// Framing codec in isolation (src/serve/framing.h): golden frames, every
// truncation offset, oversize/bad-length rejection, resync-after-garbage,
// and FaultyStreambuf-driven short/faulty reads — the codec is a pure byte
// machine, so the whole fault matrix runs without a socket.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/attributes.h"
#include "src/core/session.h"
#include "src/serve/framing.h"
#include "tests/fault_injection.h"
#include "tests/test_support.h"

namespace vq::serve {
namespace {

using test::Attrs;
using test::FaultyStream;
using test::FaultyStreambuf;
using test::make_session;

AttributeSchema demo_schema() {
  AttributeSchema schema;
  (void)schema.intern(AttrDim::kSite, "site-a");
  (void)schema.intern(AttrDim::kCdn, "cdn-a");
  (void)schema.intern(AttrDim::kCdn, "cdn-b");
  return schema;
}

std::vector<Session> demo_rows(std::uint32_t epoch, std::size_t n) {
  std::vector<Session> rows;
  for (std::size_t i = 0; i < n; ++i) {
    Session s = make_session(epoch, Attrs{.cdn = i % 2 == 0 ? 0u : 1u},
                             test::good_quality());
    s.quality.bitrate_kbps = 1000.0F + static_cast<float>(i);
    rows.push_back(s);
  }
  return rows;
}

/// XORs 0x20 into the first payload byte (checksum now fails, length
/// intact — the whole frame quarantines with an exact row count).
std::string flip(std::string frame) {
  frame[kFrameHeaderBytes] = static_cast<char>(
      static_cast<unsigned char>(frame[kFrameHeaderBytes]) ^ 0x20u);
  return frame;
}

/// Feeds everything at once and drains completed frames.
std::vector<Frame> decode_all(FrameDecoder& decoder, std::string_view bytes) {
  decoder.feed(bytes);
  std::vector<Frame> frames;
  Frame f;
  while (decoder.next(f)) frames.push_back(f);
  return frames;
}

TEST(ServeFraming, GoldenHelloRoundTrips) {
  const AttributeSchema schema = demo_schema();
  const std::string wire = encode_hello(schema);
  ASSERT_GE(wire.size(), kFrameHeaderBytes + kFrameTrailerBytes);
  EXPECT_EQ(wire.compare(0, 4, kHelloMagic, 4), 0);

  FrameDecoder decoder;
  const std::vector<Frame> frames = decode_all(decoder, wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].payload.size(),
            wire.size() - kFrameHeaderBytes - kFrameTrailerBytes);
  EXPECT_EQ(decoder.stats().hello_frames, 1u);
  EXPECT_EQ(decoder.stats().resyncs, 0u);
  EXPECT_TRUE(decoder.take_errors().empty());
}

TEST(ServeFraming, GoldenDataRoundTripsEveryField) {
  std::vector<Session> rows = demo_rows(7, 3);
  rows[1].quality.join_failed = true;
  rows[2].attrs[AttrDim::kAsn] = 1234;
  const std::string wire = encode_data(rows);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + rows.size() * kRecordBytes +
                             kFrameTrailerBytes);

  FrameDecoder decoder;
  const std::vector<Frame> frames = decode_all(decoder, wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kData);
  ASSERT_EQ(frames[0].payload.size(), rows.size() * kRecordBytes);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Session parsed =
        parse_record(frames[0].payload.data() + i * kRecordBytes);
    EXPECT_EQ(parsed.epoch, rows[i].epoch);
    EXPECT_EQ(parsed.attrs, rows[i].attrs);
    EXPECT_EQ(parsed.quality.buffering_ratio,
              rows[i].quality.buffering_ratio);
    EXPECT_EQ(parsed.quality.bitrate_kbps, rows[i].quality.bitrate_kbps);
    EXPECT_EQ(parsed.quality.join_time_ms, rows[i].quality.join_time_ms);
    EXPECT_EQ(parsed.quality.join_failed, rows[i].quality.join_failed);
  }
  EXPECT_EQ(decoder.stats().rows_decoded, rows.size());
}

TEST(ServeFraming, EveryTruncationOffsetThenResumeCompletes) {
  const std::string wire = encode_data(demo_rows(3, 4));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(std::string_view{wire}.substr(0, cut));
    Frame f;
    EXPECT_FALSE(decoder.next(f)) << "cut=" << cut;
    // Any nonempty prefix of a legitimate frame is the mid-frame state a
    // read deadline watches for (a partial magic could still become one).
    EXPECT_EQ(decoder.mid_frame(), cut > 0) << "cut=" << cut;
    // The stream resuming (same connection, more bytes) must complete the
    // frame with nothing lost — feed() is position-agnostic.
    decoder.feed(std::string_view{wire}.substr(cut));
    ASSERT_TRUE(decoder.next(f)) << "cut=" << cut;
    EXPECT_EQ(f.payload.size(), 4 * kRecordBytes) << "cut=" << cut;
    EXPECT_EQ(decoder.stats().resyncs, 0u) << "cut=" << cut;
  }
}

TEST(ServeFraming, EveryByteFlipIsCountedNeverFatal) {
  const std::vector<Session> rows = demo_rows(2, 2);
  const std::string frame1 = encode_data(rows);
  const std::string frame2 = encode_data(demo_rows(3, 1));
  const std::string wire = frame1 + frame2;
  for (std::size_t off = 0; off < wire.size(); ++off) {
    std::string corrupted = wire;
    corrupted[off] = static_cast<char>(
        static_cast<unsigned char>(corrupted[off]) ^ 0x01u);
    FrameDecoder decoder;
    const std::vector<Frame> frames = decode_all(decoder, corrupted);
    const FrameDecoderStats& s = decoder.stats();
    std::uint64_t total_errors = 0;
    for (const std::uint64_t c : s.error_counts) total_errors += c;
    // A flip destroys at least the frame it lands in; it must surface as a
    // counted framing error, and at most one clean frame survives.
    EXPECT_LE(frames.size(), 1u) << "off=" << off;
    EXPECT_GE(total_errors, 1u) << "off=" << off;
    EXPECT_LE(s.rows_decoded, 3u) << "off=" << off;
  }
}

TEST(ServeFraming, PayloadFlipQuarantinesExactRowCount) {
  const std::string frame1 = encode_data(demo_rows(2, 5));
  const std::string frame2 = encode_data(demo_rows(3, 2));
  // Flip one payload byte of frame 1; its length stays intact, so the
  // decoder consumes exactly that frame and counts exactly its rows.
  std::string wire = frame1 + frame2;
  wire[kFrameHeaderBytes + 10] = static_cast<char>(
      static_cast<unsigned char>(wire[kFrameHeaderBytes + 10]) ^ 0x40u);

  FrameDecoder decoder;
  const std::vector<Frame> frames = decode_all(decoder, wire);
  ASSERT_EQ(frames.size(), 1u);  // frame 2 survives
  EXPECT_EQ(frames[0].payload.size(), 2 * kRecordBytes);
  EXPECT_EQ(decoder.stats().rows_discarded, 5u);
  EXPECT_EQ(decoder.stats().error_counts[static_cast<int>(
                FrameError::kBadChecksum)],
            1u);
  const std::vector<FrameError> errors = decoder.take_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], FrameError::kBadChecksum);
}

TEST(ServeFraming, OversizeLengthIsRejectedAndFollowingFrameRecovered) {
  FrameDecoder decoder{128};  // tight cap
  const std::string big = encode_frame(kDataMagic, std::string(155, 'x'));
  const std::string good = encode_data(demo_rows(1, 2));
  const std::vector<Frame> frames = decode_all(decoder, big + good);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload.size(), 2 * kRecordBytes);
  EXPECT_EQ(
      decoder.stats().error_counts[static_cast<int>(FrameError::kOversize)],
      1u);
  EXPECT_GE(decoder.stats().resyncs, 1u);
}

TEST(ServeFraming, NonRecordMultipleLengthIsRejected) {
  FrameDecoder decoder;
  const std::string bad =
      encode_frame(kDataMagic, std::string(kRecordBytes - 1, 'x'));
  const std::string good = encode_data(demo_rows(1, 1));
  const std::vector<Frame> frames = decode_all(decoder, bad + good);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(
      decoder.stats().error_counts[static_cast<int>(FrameError::kBadLength)],
      1u);
  EXPECT_EQ(decoder.stats().rows_decoded, 1u);
}

TEST(ServeFraming, ResyncAfterGarbageCountsOneEpisodeAndEveryByte) {
  const std::string garbage(97, '\xff');  // cannot contain a magic
  const std::string good = encode_data(demo_rows(4, 2));
  FrameDecoder decoder;
  const std::vector<Frame> frames = decode_all(decoder, garbage + good);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(decoder.stats().resyncs, 1u);  // one blob, one episode
  EXPECT_EQ(decoder.stats().bytes_skipped, garbage.size());
  EXPECT_EQ(
      decoder.stats().error_counts[static_cast<int>(FrameError::kBadMagic)],
      1u);
}

TEST(ServeFraming, MagicSplitAcrossFeedsStillResyncs) {
  const std::string good = encode_data(demo_rows(5, 1));
  FrameDecoder decoder;
  // Garbage whose tail is the first 3 magic bytes; the decoder must keep
  // those pending instead of skipping them, or the next feed can never
  // complete the magic.
  decoder.feed(std::string(16, '\xfe') + good.substr(0, 3));
  Frame f;
  EXPECT_FALSE(decoder.next(f));
  decoder.feed(std::string_view{good}.substr(3));
  ASSERT_TRUE(decoder.next(f));
  EXPECT_EQ(f.payload.size(), kRecordBytes);
  EXPECT_EQ(decoder.stats().bytes_skipped, 16u);
}

TEST(ServeFraming, FaultyStreambufShortReadsMatchWholeFeed) {
  const std::string wire = encode_hello(demo_schema()) +
                           encode_data(demo_rows(0, 3)) +
                           encode_data(demo_rows(1, 2));
  FrameDecoder whole;
  const std::vector<Frame> expected = decode_all(whole, wire);
  ASSERT_EQ(expected.size(), 3u);

  // chunk=1 forces one-byte underflows — the socket-read worst case.
  FaultyStream faulty{wire, FaultyStreambuf::Options{.chunk = 1}};
  FrameDecoder decoder;
  std::vector<Frame> frames;
  char buf[7];  // deliberately not a divisor of any frame length
  Frame f;
  while (faulty.stream().read(buf, sizeof buf) || faulty.stream().gcount()) {
    decoder.feed(buf, static_cast<std::size_t>(faulty.stream().gcount()));
    while (decoder.next(f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), expected.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].type, expected[i].type) << i;
    EXPECT_EQ(frames[i].payload, expected[i].payload) << i;
  }
  EXPECT_EQ(decoder.stats().resyncs, 0u);
}

TEST(ServeFraming, FaultyStreambufTransientFaultLosesOnlyTheGap) {
  const std::string wire =
      encode_data(demo_rows(0, 2)) + encode_data(demo_rows(1, 2));
  // The stream throws mid-frame-1; the connection-level reader would feed
  // what it got, drop the connection, and a reconnecting producer resends
  // from frame 2 — the decoder must pick up cleanly after a reset.
  FaultyStream faulty{
      wire, FaultyStreambuf::Options{.chunk = 8, .fail_at = 20}};
  FrameDecoder decoder;
  char buf[8];
  std::size_t fed = 0;
  try {
    while (faulty.stream().read(buf, sizeof buf) ||
           faulty.stream().gcount()) {
      decoder.feed(buf, static_cast<std::size_t>(faulty.stream().gcount()));
      fed += static_cast<std::size_t>(faulty.stream().gcount());
    }
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(fed, wire.size());
  EXPECT_TRUE(decoder.mid_frame());

  FrameDecoder fresh;  // the "reconnect"
  const std::vector<Frame> frames =
      decode_all(fresh, std::string_view{wire}.substr(wire.size() / 2));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload.size(), 2 * kRecordBytes);
}

TEST(ServeFraming, StatsConserveEveryRowAndError) {
  FrameDecoder decoder;
  std::string wire = std::string(11, '\xff');        // garbage
  wire += encode_data(demo_rows(0, 3));              // good
  wire += flip(encode_data(demo_rows(1, 4)));        // checksum loss
  wire += encode_frame(kDataMagic, std::string(7, 'x'));  // bad length
  wire += encode_data(demo_rows(2, 2));              // good
  const std::vector<Frame> frames = decode_all(decoder, wire);
  EXPECT_EQ(frames.size(), 2u);
  const FrameDecoderStats& s = decoder.stats();
  EXPECT_EQ(s.rows_decoded, 5u);
  EXPECT_EQ(s.rows_discarded, 4u);
  EXPECT_EQ(s.frames_decoded, 2u);
  // 11 garbage bytes + the bad-length frame's magic (4) and its unframed
  // remainder (4 length + 7 payload + 8 checksum = 19) scanned past.
  EXPECT_EQ(s.bytes_skipped, 11u + 4u + 19u);
  std::uint64_t total_errors = 0;
  for (const std::uint64_t c : s.error_counts) total_errors += c;
  EXPECT_EQ(total_errors, 3u);  // bad magic, bad checksum, bad length
}

}  // namespace
}  // namespace vq::serve
