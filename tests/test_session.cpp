#include "src/core/session.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

TEST(ProblemThresholds, BufferingRatioRule) {
  const ProblemThresholds t;
  EXPECT_FALSE(t.is_problem(Metric::kBufRatio, test::good_quality()));
  EXPECT_TRUE(t.is_problem(Metric::kBufRatio, test::bad_buffering()));
  QualityMetrics boundary = test::good_quality();
  boundary.buffering_ratio = 0.05F;  // exactly at the threshold: not greater
  EXPECT_FALSE(t.is_problem(Metric::kBufRatio, boundary));
}

TEST(ProblemThresholds, BitrateRule) {
  const ProblemThresholds t;
  EXPECT_FALSE(t.is_problem(Metric::kBitrate, test::good_quality()));
  EXPECT_TRUE(t.is_problem(Metric::kBitrate, test::bad_bitrate()));
  QualityMetrics boundary = test::good_quality();
  boundary.bitrate_kbps = 700.0F;  // exactly at the threshold: not below
  EXPECT_FALSE(t.is_problem(Metric::kBitrate, boundary));
}

TEST(ProblemThresholds, JoinTimeRule) {
  const ProblemThresholds t;
  EXPECT_FALSE(t.is_problem(Metric::kJoinTime, test::good_quality()));
  EXPECT_TRUE(t.is_problem(Metric::kJoinTime, test::bad_join_time()));
}

TEST(ProblemThresholds, JoinFailureRule) {
  const ProblemThresholds t;
  EXPECT_FALSE(t.is_problem(Metric::kJoinFailure, test::good_quality()));
  EXPECT_TRUE(t.is_problem(Metric::kJoinFailure, test::failed_join()));
}

TEST(ProblemThresholds, FailedJoinOnlyCountsAsJoinFailure) {
  // A failed session never played: its zero bitrate / zero buffering must
  // not leak into the other metrics.
  const ProblemThresholds t;
  const QualityMetrics q = test::failed_join();
  EXPECT_FALSE(t.is_problem(Metric::kBufRatio, q));
  EXPECT_FALSE(t.is_problem(Metric::kBitrate, q));
  EXPECT_FALSE(t.is_problem(Metric::kJoinTime, q));
  EXPECT_TRUE(t.is_problem(Metric::kJoinFailure, q));
}

TEST(ProblemThresholds, ProblemBitsPackAllMetrics) {
  const ProblemThresholds t;
  EXPECT_EQ(t.problem_bits(test::good_quality()), 0);
  EXPECT_EQ(t.problem_bits(test::bad_buffering()), 1u << 0);
  EXPECT_EQ(t.problem_bits(test::bad_bitrate()), 1u << 1);
  EXPECT_EQ(t.problem_bits(test::bad_join_time()), 1u << 2);
  EXPECT_EQ(t.problem_bits(test::failed_join()), 1u << 3);

  QualityMetrics multi = test::bad_buffering();
  multi.bitrate_kbps = 100.0F;
  EXPECT_EQ(t.problem_bits(multi), (1u << 0) | (1u << 1));
}

TEST(ProblemThresholds, CustomThresholdsApply) {
  ProblemThresholds strict;
  strict.max_buffering_ratio = 0.005;
  strict.min_bitrate_kbps = 5000.0;
  strict.max_join_time_ms = 1000.0;
  const QualityMetrics q = test::good_quality();
  EXPECT_TRUE(strict.is_problem(Metric::kBufRatio, q));
  EXPECT_TRUE(strict.is_problem(Metric::kBitrate, q));
  EXPECT_TRUE(strict.is_problem(Metric::kJoinTime, q));
}

TEST(MetricName, AllDistinctAndStable) {
  EXPECT_EQ(metric_name(Metric::kBufRatio), "BufRatio");
  EXPECT_EQ(metric_name(Metric::kBitrate), "Bitrate");
  EXPECT_EQ(metric_name(Metric::kJoinTime), "JoinTime");
  EXPECT_EQ(metric_name(Metric::kJoinFailure), "JoinFailure");
}

TEST(SessionTable, EmptyTable) {
  const SessionTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.num_epochs(), 0u);
}

TEST(SessionTable, SortsByEpochAndIndexes) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 2, Attrs{.site = 1}, test::good_quality(), 3);
  test::add_sessions(sessions, 0, Attrs{.site = 2}, test::good_quality(), 2);
  test::add_sessions(sessions, 2, Attrs{.site = 3}, test::bad_buffering(), 1);
  const SessionTable table{std::move(sessions)};

  EXPECT_EQ(table.size(), 6u);
  EXPECT_EQ(table.num_epochs(), 3u);
  EXPECT_EQ(table.epoch(0).size(), 2u);
  EXPECT_EQ(table.epoch(1).size(), 0u);  // empty middle epoch
  EXPECT_EQ(table.epoch(2).size(), 4u);
  EXPECT_EQ(table.epoch(99).size(), 0u);  // out of range -> empty span
  for (const Session& s : table.epoch(0)) EXPECT_EQ(s.epoch, 0u);
  for (const Session& s : table.epoch(2)) EXPECT_EQ(s.epoch, 2u);
}

TEST(SessionTable, EpochSpansPartitionAllSessions) {
  std::vector<Session> sessions;
  for (std::uint32_t e : {4u, 1u, 3u, 1u, 4u, 0u}) {
    sessions.push_back(
        test::make_session(e, Attrs{.site = e}, test::good_quality()));
  }
  const SessionTable table{std::move(sessions)};
  std::size_t total = 0;
  for (std::uint32_t e = 0; e < table.num_epochs(); ++e) {
    total += table.epoch(e).size();
  }
  EXPECT_EQ(total, table.size());
}

TEST(SessionTable, AppendRequiresFinalize) {
  SessionTable table;
  table.append(test::make_session(0, Attrs{}, test::good_quality()));
  EXPECT_THROW((void)table.epoch(0), std::logic_error);
  table.finalize();
  EXPECT_EQ(table.epoch(0).size(), 1u);
  EXPECT_EQ(table.num_epochs(), 1u);
}

}  // namespace
}  // namespace vq
