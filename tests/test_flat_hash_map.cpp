#include "src/util/flat_hash_map.h"

#include <gtest/gtest.h>

#include <array>
#include <unordered_map>
#include <unordered_set>

#include "src/util/rng.h"

namespace vq {
namespace {

TEST(FlatMap64, StartsEmpty) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_FALSE(map.contains(1));
}

TEST(FlatMap64, InsertAndLookup) {
  FlatMap64<int> map;
  map[10] = 5;
  map[20] = 7;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(10), nullptr);
  EXPECT_EQ(*map.find(10), 5);
  ASSERT_NE(map.find(20), nullptr);
  EXPECT_EQ(*map.find(20), 7);
  EXPECT_EQ(map.find(30), nullptr);
}

TEST(FlatMap64, OperatorBracketDefaultConstructs) {
  FlatMap64<int> map;
  EXPECT_EQ(map[99], 0);
  map[99] += 3;
  EXPECT_EQ(map[99], 3);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, ZeroKeyIsValid) {
  FlatMap64<int> map;
  map[0] = 42;
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 42);
}

TEST(FlatMap64, SurvivesManyRehashes) {
  FlatMap64<std::uint64_t> map;
  for (std::uint64_t i = 0; i < 10'000; ++i) map[i * 7919] = i;
  EXPECT_EQ(map.size(), 10'000u);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_NE(map.find(i * 7919), nullptr) << i;
    EXPECT_EQ(*map.find(i * 7919), i);
  }
}

TEST(FlatMap64, ClearKeepsCapacityButDropsEntries) {
  FlatMap64<int> map;
  for (std::uint64_t i = 0; i < 100; ++i) map[i] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(map.find(i), nullptr);
  map[5] = 2;
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, ReserveAvoidsInvalidation) {
  FlatMap64<int> map;
  map.reserve(1000);
  int& ref = map[1];
  for (std::uint64_t i = 2; i < 700; ++i) map[i] = 0;  // below reserve
  ref = 17;  // must still be valid
  EXPECT_EQ(*map.find(1), 17);
}

TEST(FlatMap64, ForEachVisitsEveryEntryOnce) {
  FlatMap64<int> map;
  for (std::uint64_t i = 1; i <= 500; ++i) map[i] = static_cast<int>(i);
  std::unordered_set<std::uint64_t> seen;
  long sum = 0;
  map.for_each([&](std::uint64_t key, int value) {
    EXPECT_TRUE(seen.insert(key).second);
    sum += value;
  });
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_EQ(sum, 500 * 501 / 2);
}

TEST(FlatMap64, MutableForEachCanUpdateValues) {
  FlatMap64<int> map;
  map[1] = 1;
  map[2] = 2;
  map.for_each([](std::uint64_t, int& value) { value *= 10; });
  EXPECT_EQ(*map.find(1), 10);
  EXPECT_EQ(*map.find(2), 20);
}

TEST(FlatMap64, MatchesUnorderedMapUnderRandomWorkload) {
  FlatMap64<std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  Xoshiro256ss rng{99};
  for (int op = 0; op < 50'000; ++op) {
    const std::uint64_t key = rng.below(2'000);
    const std::uint64_t value = rng.below(1'000'000);
    if (rng.bernoulli(0.7)) {
      map[key] = value;
      reference[key] = value;
    } else {
      const auto* found = map.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
  }
  EXPECT_EQ(map.size(), reference.size());
}

TEST(FlatMap64, MergeAddCombinesWithPlusEquals) {
  FlatMap64<std::uint64_t> a;
  a[1] = 10;
  a[2] = 20;
  FlatMap64<std::uint64_t> b;
  b[2] = 5;
  b[3] = 7;
  a.merge_add(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(*a.find(1), 10u);
  EXPECT_EQ(*a.find(2), 25u);
  EXPECT_EQ(*a.find(3), 7u);
  // The source map is untouched.
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(*b.find(2), 5u);
}

TEST(FlatMap64, MergeAddManyShardsMatchesSingleMap) {
  // Shard a stream of upserts by key hash, merge, and compare against one
  // flat accumulation — the lattice engine's shard/merge pattern.
  constexpr std::size_t kShards = 5;
  FlatMap64<std::uint64_t> whole;
  std::array<FlatMap64<std::uint64_t>, kShards> shards;
  Xoshiro256ss rng{7};
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t key = rng.below(500);
    const std::uint64_t value = rng.below(100);
    whole[key] += value;
    shards[splitmix64(key) % kShards][key] += value;
  }
  FlatMap64<std::uint64_t> merged;
  for (const auto& shard : shards) merged.merge_add(shard);
  ASSERT_EQ(merged.size(), whole.size());
  std::size_t mismatches = 0;
  whole.for_each([&](std::uint64_t key, std::uint64_t value) {
    const auto* found = merged.find(key);
    if (found == nullptr || *found != value) ++mismatches;
  });
  EXPECT_EQ(mismatches, 0u);
}

TEST(FlatSet64, InsertContainsClear) {
  FlatSet64 set;
  EXPECT_TRUE(set.empty());
  set.insert(3);
  set.insert(3);
  set.insert(9);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(9));
  EXPECT_FALSE(set.contains(4));
  std::size_t visited = 0;
  set.for_each([&](std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, 2u);
  set.clear();
  EXPECT_FALSE(set.contains(3));
}

}  // namespace
}  // namespace vq
