#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace vq {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256ss a{123};
  Xoshiro256ss b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256ss a{1};
  Xoshiro256ss b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, Uniform01InRangeAndWellSpread) {
  Xoshiro256ss rng{7};
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, BelowCoversFullRangeUniformly) {
  Xoshiro256ss rng{11};
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN / 10.0 * 0.1);
  }
}

TEST(Xoshiro, BernoulliExtremes) {
  Xoshiro256ss rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Xoshiro, BernoulliFrequency) {
  Xoshiro256ss rng{6};
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256ss rng{8};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Xoshiro, LognormalMedian) {
  Xoshiro256ss rng{9};
  std::vector<double> xs;
  constexpr int kN = 50'001;
  xs.reserve(kN);
  for (int i = 0; i < kN; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + kN / 2, xs.end());
  EXPECT_NEAR(xs[kN / 2], std::exp(1.0), 0.05);
}

TEST(Xoshiro, ExponentialMean) {
  Xoshiro256ss rng{10};
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.05);
}

TEST(Xoshiro, ParetoBoundedBelowAndHeavyTailed) {
  Xoshiro256ss rng{12};
  int above_10x = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.pareto(1.0, 1.1);
    ASSERT_GE(x, 1.0);
    if (x > 10.0) ++above_10x;
  }
  // P(X > 10) = 10^-1.1 ~= 7.9%.
  EXPECT_NEAR(above_10x / static_cast<double>(kN), 0.079, 0.01);
}

TEST(Xoshiro, DeriveIsDeterministicAndDecorrelated) {
  const Xoshiro256ss base{42};
  Xoshiro256ss a = base.derive(1);
  Xoshiro256ss a2 = base.derive(1);
  Xoshiro256ss b = base.derive(2);
  int equal_ab = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, a2());
    if (va == b()) ++equal_ab;
  }
  EXPECT_LE(equal_ab, 1);
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfSampler, PmfSumsToOneAndDecreases) {
  const ZipfSampler zipf{100, 1.0};
  double total = 0.0;
  double prev = 1.0;
  for (std::size_t i = 0; i < 100; ++i) {
    const double p = zipf.pmf(i);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_THROW(zipf.pmf(100), std::out_of_range);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const ZipfSampler zipf{4, 0.0};
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(zipf.pmf(i), 0.25, 1e-12);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchPmf) {
  const ZipfSampler zipf{10, 0.9};
  Xoshiro256ss rng{3};
  std::vector<int> counts(10, 0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) ++counts[zipf(rng)];
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(kN), zipf.pmf(i), 0.005);
  }
}

TEST(DiscreteSampler, RejectsBadWeights) {
  const std::vector<double> empty;
  EXPECT_THROW(DiscreteSampler{std::span<const double>{empty}},
               std::invalid_argument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(DiscreteSampler{std::span<const double>{negative}},
               std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{std::span<const double>{zeros}},
               std::invalid_argument);
}

TEST(DiscreteSampler, RespectsWeights) {
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  const DiscreteSampler sampler{std::span<const double>{weights}};
  Xoshiro256ss rng{4};
  std::vector<int> counts(3, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[sampler(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.75, 0.01);
}

TEST(Splitmix, IsAPermutationStep) {
  // Distinct inputs map to distinct outputs in a small probe set.
  std::vector<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 1000; ++x) outs.push_back(splitmix64(x));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

}  // namespace
}  // namespace vq
