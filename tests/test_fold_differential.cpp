// Differential tests for the leaf-folded aggregation path: on the same
// trace, the folded two-pass engine (serial and sharded) must reproduce the
// original session-by-session lattice bit for bit — root and every cluster
// cell — at multiple arity caps.

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/critical_cluster.h"
#include "src/gen/tracegen.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace vq {
namespace {

/// Full-table equality: same cell set, identical counters everywhere.
void expect_tables_identical(const EpochClusterTable& expected,
                             const EpochClusterTable& actual) {
  EXPECT_EQ(expected.epoch, actual.epoch);
  EXPECT_EQ(expected.root, actual.root);
  ASSERT_EQ(expected.clusters.size(), actual.clusters.size());
  std::size_t mismatches = 0;
  expected.clusters.for_each(
      [&](std::uint64_t raw, const ClusterStats& stats) {
        const ClusterStats* other = actual.clusters.find(raw);
        if (other == nullptr || !(stats == *other)) ++mismatches;
      });
  EXPECT_EQ(mismatches, 0u);
}

SessionTable big_trace() {
  // A small attribute universe so leaves repeat heavily (the regime the fold
  // targets): ~sites x cdns x asns x device combos << 50k sessions.
  WorldConfig world_config;
  world_config.num_sites = 12;
  world_config.num_cdns = 3;
  world_config.num_asns = 25;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 1;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch = 50'000;
  trace_config.diurnal_amplitude = 0.0;  // epoch 0 gets the full 50k
  return generate_trace(world, events, trace_config);
}

class FoldDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FoldDifferential, FoldedMatchesUnfoldedOn50kSessions) {
  static const SessionTable trace = big_trace();
  ASSERT_GE(trace.size(), 50'000u);
  const std::span<const Session> sessions = trace.epoch(0);
  const ProblemThresholds thresholds;

  ClusterEngineConfig config;
  config.max_arity = GetParam();

  const EpochClusterTable unfolded =
      aggregate_epoch_unfolded(sessions, thresholds, config, 0);
  // The distinct-leaf count must be well below the session count for the
  // fold to be a meaningful compression (and for this test to exercise it).
  const LeafFold fold = fold_sessions(sessions, thresholds, 0);
  EXPECT_LT(fold.leaves.size(), sessions.size() / 2);
  EXPECT_EQ(fold.root, unfolded.root);

  const EpochClusterTable folded = expand_fold(fold, config);
  expect_tables_identical(unfolded, folded);

  ThreadPool pool{4};
  for (const std::size_t shards : {2u, 7u}) {
    const EpochClusterTable sharded =
        expand_fold(fold, config, &pool, shards);
    expect_tables_identical(unfolded, sharded);
  }

  // The public entry point dispatches to the folded path by default and to
  // the unfolded one when disabled; both must agree with the baseline.
  config.fold_leaves = true;
  expect_tables_identical(unfolded,
                          aggregate_epoch(sessions, thresholds, config, 0));
  config.fold_leaves = false;
  expect_tables_identical(unfolded,
                          aggregate_epoch(sessions, thresholds, config, 0));
}

INSTANTIATE_TEST_SUITE_P(ArityCaps, FoldDifferential, ::testing::Values(2, 7),
                         [](const auto& info) {
                           return "arity" + std::to_string(info.param);
                         });

TEST(FoldDifferential, CriticalAnalysisAgreesAcrossOverloads) {
  // The fold-based and session-span find_critical_clusters overloads must
  // produce the same analysis (they share one implementation; this pins the
  // wrapper's folding step).
  static const SessionTable trace = big_trace();
  const std::span<const Session> sessions = trace.epoch(0);
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 150};

  const LeafFold fold = fold_sessions(sessions, thresholds, 0);
  const EpochClusterTable table = expand_fold(fold, {});
  for (const Metric m : kAllMetrics) {
    const CriticalAnalysis from_fold =
        find_critical_clusters(fold, table, params, m);
    const CriticalAnalysis from_span =
        find_critical_clusters(sessions, table, thresholds, params, m);
    EXPECT_EQ(from_fold.problem_sessions, from_span.problem_sessions);
    EXPECT_EQ(from_fold.problem_sessions_in_pc,
              from_span.problem_sessions_in_pc);
    ASSERT_EQ(from_fold.criticals.size(), from_span.criticals.size());
    for (std::size_t i = 0; i < from_fold.criticals.size(); ++i) {
      EXPECT_EQ(from_fold.criticals[i].key, from_span.criticals[i].key);
      EXPECT_DOUBLE_EQ(from_fold.criticals[i].attributed,
                       from_span.criticals[i].attributed);
    }
  }
}

TEST(FoldDifferential, FoldAccumulatesPerLeafCounters) {
  std::vector<Session> sessions;
  const test::Attrs a{.site = 1, .cdn = 2};
  const test::Attrs b{.site = 3, .cdn = 2};
  test::add_sessions(sessions, 0, a, test::bad_buffering(), 5);
  test::add_sessions(sessions, 0, a, test::good_quality(), 7);
  test::add_sessions(sessions, 0, b, test::good_quality(), 2);
  const LeafFold fold = fold_sessions(sessions, {}, 0);

  EXPECT_EQ(fold.leaves.size(), 2u);
  EXPECT_EQ(fold.root.sessions, 14u);
  const ClusterStats* leaf_a =
      fold.leaves.find(ClusterKey::pack(kFullMask, a.vec()).raw());
  ASSERT_NE(leaf_a, nullptr);
  EXPECT_EQ(leaf_a->sessions, 12u);
  EXPECT_EQ(leaf_a->problems[static_cast<int>(Metric::kBufRatio)], 5u);
}

TEST(FoldDifferential, FoldRejectsEpochMismatch) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 3, test::Attrs{}, test::good_quality(), 1);
  EXPECT_THROW((void)fold_sessions(sessions, {}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vq
