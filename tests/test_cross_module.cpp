// Cross-module consistency: independent computations of the same quantity
// through different public APIs must agree.

#include <gtest/gtest.h>

#include "src/core/costbenefit.h"
#include "src/core/engagement.h"
#include "src/core/overlap.h"
#include "src/core/whatif.h"
#include "src/gen/tracegen.h"

namespace vq {
namespace {

struct CrossFixture : ::testing::Test {
  CrossFixture() {
    WorldConfig world_config;
    world_config.num_sites = 50;
    world_config.num_cdns = 8;
    world_config.num_asns = 150;
    world = World::build(world_config);
    EventScheduleConfig event_config;
    event_config.num_epochs = 6;
    event_config.events_per_epoch = 1.5;
    events = EventSchedule::generate(world, event_config);
    TraceConfig trace_config;
    trace_config.num_epochs = 6;
    trace_config.sessions_per_epoch = 2'500;
    trace = generate_trace(world, events, trace_config);
    config.cluster_params.min_sessions = 80;
    result = run_pipeline(trace, config);
  }

  World world = World::build(
      WorldConfig{.num_sites = 1, .num_cdns = 1, .num_asns = 1});
  EventSchedule events = EventSchedule::none(0);
  SessionTable trace;
  PipelineConfig config;
  PipelineResult result;
};

TEST_F(CrossFixture, EngagementSessionMassMatchesWhatIfAlleviation) {
  // EngagementWhatIf recomputes attribution independently of
  // WhatIfAnalyzer; their session-alleviation totals must coincide.
  const WhatIfAnalyzer whatif{result};
  const EngagementWhatIf engagement{trace, result, EngagementModel{}};
  const double fractions[] = {1.0};
  for (const Metric m : kAllMetrics) {
    const double whatif_alleviated =
        whatif.topk_sweep(m, RankBy::kCoverage, fractions)[0]
            .alleviated_fraction *
        static_cast<double>(
            result.total_problem_sessions(m, 0, result.num_epochs));
    double engagement_alleviated = 0.0;
    for (const auto& r : engagement.ranking(m)) {
      engagement_alleviated += r.sessions_alleviated;
    }
    EXPECT_NEAR(engagement_alleviated, whatif_alleviated,
                1e-6 * std::max(1.0, whatif_alleviated))
        << metric_name(m);
  }
}

TEST_F(CrossFixture, CostPlannerUnlimitedEqualsWhatIfFullSweep) {
  // With an unlimited budget the greedy planner fixes every critical
  // cluster — the same set the full what-if sweep fixes.
  const WhatIfAnalyzer whatif{result};
  const CostBenefitPlanner planner{result};
  const double fractions[] = {1.0};
  for (const Metric m : kAllMetrics) {
    const auto plan = planner.plan(m, {}, 1e15);
    const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, fractions);
    EXPECT_NEAR(plan.alleviated_fraction, sweep[0].alleviated_fraction, 1e-9)
        << metric_name(m);
    EXPECT_EQ(plan.items.size(), whatif.distinct_critical_count(m));
  }
}

TEST_F(CrossFixture, TopKeysAgreeWithPerEpochCriticalRecords) {
  // top_critical_keys aggregates per-epoch attribution; re-derive the
  // aggregation by hand and compare the induced ranking's top element.
  for (const Metric m : kAllMetrics) {
    std::unordered_map<std::uint64_t, double> mass;
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      for (const auto& c : result.at(m, e).analysis.criticals) {
        mass[c.key.raw()] += c.attributed;
      }
    }
    if (mass.empty()) continue;
    const auto top = top_critical_keys(result, m, 1);
    ASSERT_EQ(top.size(), 1u);
    double best = -1.0;
    for (const auto& [raw, value] : mass) best = std::max(best, value);
    EXPECT_NEAR(mass.at(top[0]), best, 1e-12) << metric_name(m);
  }
}

TEST_F(CrossFixture, ReactiveZeroDelayMatchesFullCoverageSweep) {
  // Fixing every critical cluster reactively with no delay is the same
  // intervention as the oracle top-100% coverage sweep.
  const WhatIfAnalyzer whatif{result};
  const double fractions[] = {1.0};
  for (const Metric m : kAllMetrics) {
    const auto reactive = whatif.reactive(m, 0);
    const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, fractions);
    EXPECT_NEAR(reactive.potential_fraction, sweep[0].alleviated_fraction,
                1e-9)
        << metric_name(m);
  }
}

TEST_F(CrossFixture, TypeBreakdownMassMatchesCoverage) {
  // Sum of the Fig. 10 by-mask fractions equals the critical coverage of
  // the whole trace (both are attributed mass / problem sessions).
  for (const Metric m : kAllMetrics) {
    const TypeBreakdown breakdown = critical_type_breakdown(result, m);
    double attributed = 0.0;
    for (const auto& [mask, fraction] : breakdown.by_mask) {
      attributed += fraction;
    }
    double total_attr = 0.0;
    double total_problem = 0.0;
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      total_attr += result.at(m, e).analysis.attributed_mass;
      total_problem +=
          static_cast<double>(result.at(m, e).analysis.problem_sessions);
    }
    if (total_problem == 0.0) continue;
    EXPECT_NEAR(attributed, total_attr / total_problem, 1e-9)
        << metric_name(m);
  }
}

}  // namespace
}  // namespace vq
