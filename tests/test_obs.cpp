// Tests for the observability layer (src/obs): registry determinism across
// workers/shards settings, histogram bucket edges, span nesting, and the
// chrome-trace exporter's JSON validity + timestamp monotonicity.
//
// The registry and recorder are process-wide singletons and ctest normally
// runs each TEST in its own process, but the sanitizer jobs run the binary
// directly — so every test here resets values (never registrations) before
// it measures, and asserts on deltas, not absolutes.

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/gen/tracegen.h"
#include "src/util/thread_pool.h"

namespace vq {
namespace {

SessionTable small_trace() {
  WorldConfig world_config;
  world_config.num_sites = 40;
  world_config.num_cdns = 6;
  world_config.num_asns = 90;
  const World world = World::build(world_config);

  EventScheduleConfig event_config;
  event_config.num_epochs = 6;
  event_config.events_per_epoch = 2.0;
  const EventSchedule events = EventSchedule::generate(world, event_config);

  TraceConfig trace_config;
  trace_config.num_epochs = 6;
  trace_config.sessions_per_epoch = 1'000;
  return generate_trace(world, events, trace_config);
}

// --- registry primitives -----------------------------------------------------

TEST(ObsRegistry, CounterStripesSumExactly) {
  obs::Counter counter;
  ThreadPool pool{4};
  // 8 tasks x 10'000 increments from distinct threads: the striped cells
  // must sum to exactly 80'000 (integer addition commutes).
  pool.parallel_for(0, 8, [&](std::size_t) {
    for (int i = 0; i < 10'000; ++i) counter.add(1);
  });
  EXPECT_EQ(counter.value(), 80'000u);
}

TEST(ObsRegistry, GaugeSetAddAndMax) {
  obs::Gauge gauge;
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 4);
  gauge.update_max(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(2);  // lower value must not regress the max
  EXPECT_EQ(gauge.value(), 10);
}

TEST(ObsRegistry, SameNameReturnsSameHandle) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("obs_test.same_handle");
  obs::Counter& b = reg.counter("obs_test.same_handle");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("obs_test.kind_clash");
  EXPECT_THROW(reg.gauge("obs_test.kind_clash"), std::logic_error);
  EXPECT_THROW(reg.histogram("obs_test.kind_clash", {1, 2}),
               std::logic_error);
}

TEST(ObsRegistry, HistogramEdgeMismatchThrows) {
  obs::Registry& reg = obs::Registry::global();
  reg.histogram("obs_test.edge_clash", {10, 20});
  EXPECT_NO_THROW(reg.histogram("obs_test.edge_clash", {10, 20}));
  EXPECT_THROW(reg.histogram("obs_test.edge_clash", {10, 30}),
               std::logic_error);
}

TEST(ObsRegistry, RuntimeMetricsExcludedFromDefaultSnapshot) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("obs_test.stable_metric").add(1);
  reg.counter("obs_test.runtime_metric", obs::Determinism::kRuntime).add(1);
  const std::string stable_only = reg.snapshot_json();
  EXPECT_NE(stable_only.find("obs_test.stable_metric"), std::string::npos);
  EXPECT_EQ(stable_only.find("obs_test.runtime_metric"), std::string::npos);
  const std::string with_runtime = reg.snapshot_json(true);
  EXPECT_NE(with_runtime.find("obs_test.runtime_metric"), std::string::npos);
}

TEST(ObsRegistry, ResetValuesKeepsRegistrations) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("obs_test.reset_keep");
  c.add(5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);           // value zeroed...
  EXPECT_EQ(&reg.counter("obs_test.reset_keep"), &c);  // ...handle intact
}

// --- registry determinism across workers/shards ------------------------------

TEST(ObsRegistry, SnapshotIdenticalAcrossWorkersAndShards) {
  const SessionTable trace = small_trace();
  obs::Registry& reg = obs::Registry::global();

  std::vector<std::string> snapshots;
  for (const std::size_t workers : {1u, 4u}) {
    for (const std::size_t shards : {1u, 4u}) {
      reg.reset_values();
      PipelineConfig config;
      config.workers = workers;
      config.shards = shards;
      config.cluster_params.min_sessions = 40;
      (void)run_pipeline(trace, config);
      snapshots.push_back(reg.snapshot_json());
    }
  }
  ASSERT_EQ(snapshots.size(), 4u);
  // The kStable snapshot is a determinism contract: byte-identical JSON for
  // every {workers, shards} combination on the same input.
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[0], snapshots[i]) << "config #" << i;
  }
  EXPECT_NE(snapshots[0].find("\"pipeline.epochs\": 6"), std::string::npos)
      << snapshots[0];
}

// --- histogram bucketing -----------------------------------------------------

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h{{10, 20, 30}};
  // Bucket i counts edges[i-1] < v <= edges[i]; > last edge overflows.
  for (const std::uint64_t v : {0u, 10u}) h.record(v);    // -> bucket 0
  for (const std::uint64_t v : {11u, 20u}) h.record(v);   // -> bucket 1
  h.record(25);                                           // -> bucket 2
  for (const std::uint64_t v : {31u, 1000u}) h.record(v); // -> overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 2, 1, 2}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 25 + 31 + 1000);
}

TEST(ObsHistogram, RejectsNonIncreasingEdges) {
  EXPECT_THROW(obs::Histogram({10, 10}), std::logic_error);
  EXPECT_THROW(obs::Histogram({20, 10}), std::logic_error);
}

TEST(ObsHistogram, ResetZeroesEverything) {
  obs::Histogram h{{5}};
  h.record(3);
  h.record(9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{0, 0}));
}

#ifndef VIDQUAL_OBS_NO_SPANS

// --- spans -------------------------------------------------------------------

/// Flips the kill switch on for a scope and restores + drains after.
struct EnabledScope {
  EnabledScope() {
    obs::set_enabled(true);
    obs::TraceRecorder::global().clear();
  }
  ~EnabledScope() {
    obs::set_enabled(false);
    obs::TraceRecorder::global().clear();
  }
};

TEST(ObsSpan, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  obs::TraceRecorder::global().clear();
  {
    VQ_SPAN("obs_test.disabled");
  }
  EXPECT_EQ(obs::TraceRecorder::global().size(), 0u);
}

TEST(ObsSpan, NestedSpansCarryDepthAndContainment) {
  const EnabledScope scope;
  {
    VQ_SPAN("obs_test.outer");
    {
      VQ_SPAN_EPOCH("obs_test.inner", 3);
    }
  }
  const auto events = obs::TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer starts first.
  EXPECT_EQ(events[0].name, "obs_test.outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].epoch, obs::kNoEpoch);
  EXPECT_EQ(events[1].name, "obs_test.inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].epoch, 3u);
  // The inner interval lies within the outer one.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST(ObsSpan, ClearEmptiesButKeepsRecording) {
  const EnabledScope scope;
  {
    VQ_SPAN("obs_test.before_clear");
  }
  EXPECT_EQ(obs::TraceRecorder::global().size(), 1u);
  obs::TraceRecorder::global().clear();
  EXPECT_EQ(obs::TraceRecorder::global().size(), 0u);
  {
    VQ_SPAN("obs_test.after_clear");
  }
  // The thread's buffer survived the clear; recording keeps working.
  EXPECT_EQ(obs::TraceRecorder::global().size(), 1u);
}

// --- chrome-trace export -----------------------------------------------------

/// Minimal JSON well-formedness check: brackets/braces balance outside
/// strings, strings close, and no trailing garbage. Not a full parser —
/// enough to catch unbalanced or truncated output.
bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

/// Extracts every `"key": <number>` value in order of appearance.
std::vector<double> number_values(const std::string& text,
                                  const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\": ";
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    out.push_back(std::stod(text.substr(pos + needle.size())));
  }
  return out;
}

TEST(ObsTraceExport, GoldenEmptyTrace) {
  const EnabledScope scope;
  std::ostringstream out;
  obs::TraceRecorder::global().write_chrome_trace(out);
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n");
}

TEST(ObsTraceExport, ValidJsonWithMonotonicTimestamps) {
  const EnabledScope scope;
  // Record through a real (small) pipeline run so the export covers the
  // production span names, then check the JSON shape.
  const SessionTable trace = small_trace();
  PipelineConfig config;
  config.workers = 2;
  config.cluster_params.min_sessions = 40;
  (void)run_pipeline(trace, config);

  std::ostringstream out;
  obs::TraceRecorder::global().write_chrome_trace(out);
  const std::string json = out.str();

  EXPECT_TRUE(json_well_formed(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"pipeline.epoch\""), std::string::npos);

  const std::vector<double> ts = number_values(json, "ts");
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts.front(), 0.0);  // normalised to the earliest span
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]) << "ts not monotonic at event " << i;
  }
  for (const double d : number_values(json, "dur")) {
    EXPECT_GE(d, 0.0);
  }
}

TEST(ObsTraceExport, EscapesAndEpochArgs) {
  const EnabledScope scope;
  {
    VQ_SPAN_EPOCH("obs_test.with_epoch", 42);
  }
  std::ostringstream out;
  obs::TraceRecorder::global().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"args\": {\"epoch\": 42}"), std::string::npos);
  EXPECT_TRUE(json_well_formed(json));
}

#endif  // VIDQUAL_OBS_NO_SPANS

}  // namespace
}  // namespace vq
