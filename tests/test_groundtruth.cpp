// End-to-end ground-truth validation: planted problem events must be
// recoverable from the critical clusters the pipeline reports — the
// validation the paper itself could never run (it had no ground truth).

#include <gtest/gtest.h>

#include <set>

#include "src/core/pipeline.h"
#include "src/core/whatif.h"
#include "src/gen/tracegen.h"

namespace vq {
namespace {

struct GroundTruthFixture : ::testing::Test {
  GroundTruthFixture() {
    WorldConfig world_config;
    world_config.num_sites = 60;
    world_config.num_cdns = 10;
    world_config.num_asns = 150;
    world = World::build(world_config);

    EventScheduleConfig event_config;
    event_config.num_epochs = 12;
    event_config.events_per_epoch = 1.0;
    event_config.seed = 4242;
    events = EventSchedule::generate(world, event_config);

    TraceConfig trace_config;
    trace_config.num_epochs = 12;
    trace_config.sessions_per_epoch = 4'000;
    trace = generate_trace(world, events, trace_config);

    config.cluster_params.min_sessions = 100;
    result = run_pipeline(trace, config);
  }

  /// True when `detected` points at the event scope: equal, or a refinement
  /// relationship in either direction (an ASN-wide event may surface as the
  /// ASN or as ASN x ConnType depending on where significance lands).
  static bool matches(const ClusterKey& detected, const ClusterKey& scope) {
    return scope.generalizes(detected) || detected.generalizes(scope);
  }

  World world = World::build(
      WorldConfig{.num_sites = 1, .num_cdns = 1, .num_asns = 1});
  EventSchedule events = EventSchedule::none(0);
  SessionTable trace;
  PipelineConfig config;
  PipelineResult result;
};

TEST_F(GroundTruthFixture, MajorPlantedEventsAreDetected) {
  // "Major" events: hit enough sessions to be statistically visible at our
  // scale. Estimate per-event affected sessions from the scope popularity.
  std::size_t major = 0;
  std::size_t detected_major = 0;
  for (const ProblemEvent& event : events.events()) {
    // Expected affected sessions per epoch.
    double share = 1.0;
    if (event.scope.has(AttrDim::kSite)) {
      share *= world.site_sampler().pmf(event.scope.value(AttrDim::kSite));
    }
    if (event.scope.has(AttrDim::kCdn)) share *= 0.08;
    if (event.scope.has(AttrDim::kAsn)) {
      share *= world.asn_sampler().pmf(event.scope.value(AttrDim::kAsn));
    }
    if (event.scope.has(AttrDim::kConnType)) share *= 0.25;
    if (event.scope.has(AttrDim::kBrowser)) share *= 0.25;
    if (share * 4'000 < 400) continue;  // too small to be significant
    ++major;

    bool found = false;
    const std::uint32_t end =
        std::min(12u, event.start_epoch + event.duration_epochs);
    for (std::uint32_t e = event.start_epoch; e < end && !found; ++e) {
      for (const Metric m : kAllMetrics) {
        for (const CriticalRecord& c : result.at(m, e).analysis.criticals) {
          if (matches(c.key, event.scope)) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
    }
    if (found) ++detected_major;
  }
  ASSERT_GT(major, 0u);
  // Every traffic-significant planted event must surface at least once
  // during its lifetime.
  EXPECT_GE(static_cast<double>(detected_major) /
                static_cast<double>(major),
            0.8)
      << detected_major << " of " << major << " major events detected";
}

TEST_F(GroundTruthFixture, TopCriticalClustersCorrespondToRealCauses) {
  // Precision check: the top critical clusters by coverage should match a
  // planted event scope or a chronic world structure (in-house CDN,
  // single-bitrate site, bad ASN, mobile wireless).
  const WhatIfAnalyzer whatif{result};
  std::size_t checked = 0;
  std::size_t explained = 0;
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& criticals = result.at(m, e).analysis.criticals;
      for (std::size_t i = 0; i < std::min<std::size_t>(3, criticals.size());
           ++i) {
        const ClusterKey key = criticals[i].key;
        ++checked;
        bool ok = false;
        for (const std::uint32_t idx : events.active_at(e)) {
          if (matches(key, events.events()[idx].scope)) ok = true;
        }
        if (!ok && key.has(AttrDim::kCdn)) {
          const CdnModel& cdn = world.cdns()[key.value(AttrDim::kCdn)];
          ok = cdn.in_house || cdn.overload_sensitivity > 0.2;
        }
        if (!ok && key.has(AttrDim::kSite)) {
          const SiteModel& site = world.sites()[key.value(AttrDim::kSite)];
          ok = site.single_bitrate || site.remote_module_region >= 0 ||
               site.origin_quality < 0.8;
        }
        if (!ok && key.has(AttrDim::kAsn)) {
          const AsnModel& asn = world.asns()[key.value(AttrDim::kAsn)];
          ok = asn.quality < 0.7 || asn.wireless_provider;
        }
        if (!ok && key.has(AttrDim::kConnType)) {
          const auto conn = key.value(AttrDim::kConnType);
          ok = conn == kConnMobileWireless || conn == 5 || conn == 6;
        }
        if (ok) ++explained;
      }
    }
  }
  ASSERT_GT(checked, 0u);
  // A clear majority must map to a known cause; the remainder are lattice
  // combinations of causes (e.g. VodLive or Browser refinements) and
  // statistical noise.
  EXPECT_GE(static_cast<double>(explained) / static_cast<double>(checked),
            0.55)
      << explained << " of " << checked
      << " top critical clusters map to a known cause";
}

TEST_F(GroundTruthFixture, EventsIncreaseProblemAndAttributedMass) {
  // Note the count of critical clusters is NOT monotone in events: events
  // raise the global problem ratio, which lifts the 1.5x bar and un-flags
  // weak chronic clusters. What must grow is the problem mass and the mass
  // attributed to critical clusters.
  TraceConfig trace_config;
  trace_config.num_epochs = 12;
  trace_config.sessions_per_epoch = 4'000;
  const SessionTable calm =
      generate_trace(world, EventSchedule::none(12), trace_config);
  const PipelineResult calm_result = run_pipeline(calm, config);

  double stormy_problems = 0;
  double calm_problems = 0;
  double stormy_attributed = 0;
  double calm_attributed = 0;
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < 12; ++e) {
      stormy_problems +=
          static_cast<double>(result.at(m, e).analysis.problem_sessions);
      calm_problems += static_cast<double>(
          calm_result.at(m, e).analysis.problem_sessions);
      stormy_attributed += result.at(m, e).analysis.attributed_mass;
      calm_attributed += calm_result.at(m, e).analysis.attributed_mass;
    }
  }
  EXPECT_GT(stormy_problems, calm_problems);
  EXPECT_GT(stormy_attributed, calm_attributed);
}

}  // namespace
}  // namespace vq
