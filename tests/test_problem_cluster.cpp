#include "src/core/problem_cluster.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

ClusterStats make_stats(std::uint32_t sessions, std::uint32_t problems,
                        Metric m = Metric::kBufRatio) {
  ClusterStats s;
  s.sessions = sessions;
  s.problems[static_cast<int>(m)] = problems;
  return s;
}

TEST(IsProblemCluster, RequiresSignificanceAndElevatedRatio) {
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 100};
  const double global = 0.10;
  // Significant and elevated (ratio 0.2 >= 0.15).
  EXPECT_TRUE(is_problem_cluster(make_stats(200, 40), global, params,
                                 Metric::kBufRatio));
  // Significant but not elevated (0.12 < 0.15).
  EXPECT_FALSE(is_problem_cluster(make_stats(200, 24), global, params,
                                  Metric::kBufRatio));
  // Elevated but too small (50 < 100).
  EXPECT_FALSE(is_problem_cluster(make_stats(50, 25), global, params,
                                  Metric::kBufRatio));
  // Boundary: ratio exactly multiplier*global counts (>=). Use a multiplier
  // of 2 so the product is exact in binary floating point.
  const ProblemClusterParams exact{.ratio_multiplier = 2.0,
                                   .min_sessions = 100};
  EXPECT_TRUE(is_problem_cluster(make_stats(200, 40), global, exact,
                                 Metric::kBufRatio));
  EXPECT_FALSE(is_problem_cluster(make_stats(200, 39), global, exact,
                                  Metric::kBufRatio));
  // Boundary: exactly min_sessions counts (>=).
  EXPECT_TRUE(is_problem_cluster(make_stats(100, 20), global, params,
                                 Metric::kBufRatio));
}

TEST(IsProblemCluster, ZeroGlobalRatioNeedsAtLeastOneProblem) {
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 10};
  EXPECT_FALSE(is_problem_cluster(make_stats(100, 0), 0.0, params,
                                  Metric::kJoinFailure));
  EXPECT_TRUE(is_problem_cluster(make_stats(100, 1, Metric::kJoinFailure),
                                 0.0, params, Metric::kJoinFailure));
}

TEST(IsProblemCluster, MetricsAreIndependent) {
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 10};
  ClusterStats s;
  s.sessions = 100;
  s.problems[static_cast<int>(Metric::kBufRatio)] = 50;
  EXPECT_TRUE(is_problem_cluster(s, 0.1, params, Metric::kBufRatio));
  EXPECT_FALSE(is_problem_cluster(s, 0.1, params, Metric::kBitrate));
}

// Reconstruction of the paper's Figure 3 scenario: sessions across 2 ASNs
// and 2 CDNs where only some combinations are significantly bad.
class Figure3Fixture : public ::testing::Test {
 protected:
  Figure3Fixture() {
    // ASN1-CDN1: large and bad. ASN1-CDN2: large and fine.
    // ASN2-CDN1: small (insignificant). ASN2-CDN2: large and fine.
    test::add_sessions(sessions_, 0, Attrs{.cdn = 1, .asn = 1},
                       test::bad_buffering(), 60);
    test::add_sessions(sessions_, 0, Attrs{.cdn = 1, .asn = 1},
                       test::good_quality(), 40);
    test::add_sessions(sessions_, 0, Attrs{.cdn = 2, .asn = 1},
                       test::bad_buffering(), 5);
    test::add_sessions(sessions_, 0, Attrs{.cdn = 2, .asn = 1},
                       test::good_quality(), 95);
    test::add_sessions(sessions_, 0, Attrs{.cdn = 1, .asn = 2},
                       test::bad_buffering(), 9);
    test::add_sessions(sessions_, 0, Attrs{.cdn = 2, .asn = 2},
                       test::good_quality(), 100);
    table_ = aggregate_epoch(sessions_, thresholds_, {}, 0);
  }

  [[nodiscard]] bool flagged(std::uint8_t mask, const Attrs& attrs) const {
    const auto found = std::find_if(
        clusters().begin(), clusters().end(), [&](const ProblemCluster& pc) {
          return pc.key == ClusterKey::pack(mask, attrs.vec());
        });
    return found != clusters().end();
  }

  [[nodiscard]] const std::vector<ProblemCluster>& clusters() const {
    if (!clusters_built_) {
      clusters_ = find_problem_clusters(table_, params_, Metric::kBufRatio);
      clusters_built_ = true;
    }
    return clusters_;
  }

  std::vector<Session> sessions_;
  ProblemThresholds thresholds_;
  ProblemClusterParams params_{.ratio_multiplier = 1.5, .min_sessions = 50};
  EpochClusterTable table_;
  mutable std::vector<ProblemCluster> clusters_;
  mutable bool clusters_built_ = false;
};

TEST_F(Figure3Fixture, FlagsOnlySignificantElevatedClusters) {
  // Global ratio = 74/309 ~= 0.24; 1.5x ~= 0.36.
  // ASN1-CDN1 (100 sessions, ratio 0.6): flagged.
  EXPECT_TRUE(flagged(dim_bit(AttrDim::kCdn) | dim_bit(AttrDim::kAsn),
                      Attrs{.cdn = 1, .asn = 1}));
  // ASN2-CDN1 (9 sessions, ratio 1.0): too small.
  EXPECT_FALSE(flagged(dim_bit(AttrDim::kCdn) | dim_bit(AttrDim::kAsn),
                       Attrs{.cdn = 1, .asn = 2}));
  // CDN2 (200 sessions, ratio 0.025): not elevated.
  EXPECT_FALSE(flagged(dim_bit(AttrDim::kCdn), Attrs{.cdn = 2}));
  // CDN1 overall (109 sessions, ratio 69/109 ~= 0.63): flagged.
  EXPECT_TRUE(flagged(dim_bit(AttrDim::kCdn), Attrs{.cdn = 1}));
}

TEST_F(Figure3Fixture, EveryFlaggedClusterSatisfiesBothConditions) {
  const double global = table_.global_ratio(Metric::kBufRatio);
  for (const ProblemCluster& pc : clusters()) {
    EXPECT_GE(pc.stats.sessions, params_.min_sessions);
    EXPECT_GE(pc.stats.problem_ratio(Metric::kBufRatio),
              params_.ratio_multiplier * global);
  }
}

TEST_F(Figure3Fixture, CoverageCountsProblemSessionsInFlaggedClusters) {
  const std::uint64_t covered = problem_sessions_covered(
      sessions_, table_, thresholds_, params_, Metric::kBufRatio);
  // Problem sessions: 60 (asn1,cdn1) + 5 (asn1,cdn2) + 9 (asn2,cdn1) = 74.
  // The 60 are inside flagged clusters. The 5 in (asn1,cdn2) fall under
  // flagged ancestor ASN1 (200 sessions, ratio 65/200 = 0.325 < 0.36): not
  // flagged; but (cdn2,asn1) is clean, so those 5 land only in clean or
  // insignificant cells... except the ASN1 x bufratio path: check they are
  // uncovered. The 9 in (asn2,cdn1) sit under flagged CDN1.
  EXPECT_EQ(covered, 69u);
}

TEST(ProblemSessionsCovered, NoProblemsMeansZero) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1}, test::good_quality(), 10);
  const auto table = aggregate_epoch(sessions, {}, {}, 0);
  EXPECT_EQ(problem_sessions_covered(sessions, table, {}, {},
                                     Metric::kBufRatio),
            0u);
}

TEST(FindProblemClusters, EmptyTableYieldsNone) {
  const auto table = aggregate_epoch({}, {}, {}, 0);
  EXPECT_TRUE(find_problem_clusters(table, {}, Metric::kBitrate).empty());
}

}  // namespace
}  // namespace vq
