// Differential tests for the vectorized column-batch kernels
// (core/columns.h): on the same sessions, problem_bits_columns /
// pack_leaf_keys_columns / fold_sessions_columns must reproduce the
// row-wise path bit for bit, with both the kAuto (SIMD) and kScalar
// kernels — and run_pipeline_streaming must match run_pipeline at every
// workers x shards combination.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/columns.h"
#include "src/core/pipeline.h"
#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

constexpr BatchKernel kBothKernels[] = {BatchKernel::kAuto,
                                        BatchKernel::kScalar};

SessionTable medium_trace(std::uint32_t epochs = 3,
                          std::uint32_t per_epoch = 6'000) {
  WorldConfig world_config;
  world_config.num_sites = 14;
  world_config.num_cdns = 3;
  world_config.num_asns = 30;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = epochs;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = epochs;
  trace_config.sessions_per_epoch = per_epoch;
  return generate_trace(world, events, trace_config);
}

void expect_folds_identical(const LeafFold& expected, const LeafFold& actual) {
  EXPECT_EQ(expected.epoch, actual.epoch);
  EXPECT_EQ(expected.root, actual.root);
  ASSERT_EQ(expected.leaves.size(), actual.leaves.size());
  std::size_t mismatches = 0;
  expected.leaves.for_each([&](std::uint64_t raw, const ClusterStats& stats) {
    const ClusterStats* other = actual.leaves.find(raw);
    if (other == nullptr || !(stats == *other)) ++mismatches;
  });
  EXPECT_EQ(mismatches, 0u);
}

TEST(ColumnsBatch, RoundTripsRowsExactly) {
  const SessionTable trace = medium_trace(2, 500);
  const std::span<const Session> sessions = trace.epoch(1);
  const SessionColumns columns = SessionColumns::from_sessions(sessions, 1);
  ASSERT_EQ(columns.size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const Session round = columns.row(i, 1);
    EXPECT_EQ(round.attrs, sessions[i].attrs);
    EXPECT_EQ(round.quality, sessions[i].quality);
    EXPECT_EQ(round.epoch, 1u);
  }
  std::vector<Session> rows;
  columns.append_rows(1, rows);
  ASSERT_EQ(rows.size(), sessions.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].attrs, sessions[i].attrs);
    EXPECT_EQ(rows[i].quality, sessions[i].quality);
  }
}

TEST(ColumnsBatch, FromSessionsRejectsEpochMismatch) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 3, test::Attrs{}, test::good_quality(), 1);
  EXPECT_THROW((void)SessionColumns::from_sessions(sessions, 0),
               std::invalid_argument);
}

TEST(ColumnsBatch, ClearRetainsNothingButCapacity) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, test::Attrs{.site = 2}, test::failed_join(),
                     9);
  SessionColumns columns = SessionColumns::from_sessions(sessions, 0);
  ASSERT_EQ(columns.size(), 9u);
  columns.clear();
  EXPECT_TRUE(columns.empty());
  for (const auto& col : columns.attrs) EXPECT_TRUE(col.empty());
  EXPECT_TRUE(columns.buffering_ratio.empty());
}

TEST(ColumnsBatch, ProblemBitsMatchRowWisePath) {
  const SessionTable trace = medium_trace(1, 20'000);
  const std::span<const Session> sessions = trace.epoch(0);
  const ProblemThresholds thresholds;
  const SessionColumns columns = SessionColumns::from_sessions(sessions, 0);
  std::vector<std::uint8_t> bits(columns.size());
  for (const BatchKernel kernel : kBothKernels) {
    problem_bits_columns(columns, thresholds, bits, kernel);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (bits[i] != thresholds.problem_bits(sessions[i].quality)) {
        ++mismatches;
      }
    }
    EXPECT_EQ(mismatches, 0u) << batch_kernel_name();
  }
}

TEST(ColumnsBatch, ProblemBitsEdgeValuesMatchScalar) {
  // Threshold-exact, NaN, infinity, and join-failure rows: the SIMD ordered
  // compares must agree with the scalar float compares on every one.  Rows
  // are repeated past one SIMD block so full vector lanes hit the edges too.
  const ProblemThresholds thresholds;
  const float at_buf = static_cast<float>(thresholds.max_buffering_ratio);
  const float at_bitrate = static_cast<float>(thresholds.min_bitrate_kbps);
  const float at_join = static_cast<float>(thresholds.max_join_time_ms);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const QualityMetrics edge_cases[] = {
      {at_buf, at_bitrate, at_join, false},          // exactly at: not problems
      {std::nextafter(at_buf, 1.0F), at_bitrate, at_join, false},
      {at_buf, std::nextafter(at_bitrate, 0.0F), at_join, false},
      {at_buf, at_bitrate, std::nextafter(at_join, 1e9F), false},
      {nan, nan, nan, false},                        // NaN compares false
      {inf, -inf, inf, false},
      {0.5F, 100.0F, 90'000.0F, true},               // join failure dominates
      {nan, inf, -inf, true},
      {-0.0F, 0.0F, -1.0F, false},
  };
  std::vector<Session> sessions;
  for (int rep = 0; rep < 13; ++rep) {
    for (const QualityMetrics& q : edge_cases) {
      sessions.push_back(test::make_session(0, test::Attrs{}, q));
    }
  }
  const SessionColumns columns = SessionColumns::from_sessions(sessions, 0);
  std::vector<std::uint8_t> bits(columns.size());
  for (const BatchKernel kernel : kBothKernels) {
    problem_bits_columns(columns, thresholds, bits, kernel);
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      EXPECT_EQ(bits[i], thresholds.problem_bits(sessions[i].quality))
          << "row " << i;
    }
  }
}

TEST(ColumnsBatch, PackedLeafKeysMatchClusterKeyPack) {
  const SessionTable trace = medium_trace(1, 20'000);
  const std::span<const Session> sessions = trace.epoch(0);
  const SessionColumns columns = SessionColumns::from_sessions(sessions, 0);
  std::vector<std::uint64_t> keys(columns.size());
  for (const BatchKernel kernel : kBothKernels) {
    pack_leaf_keys_columns(columns, keys, kernel);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (keys[i] != ClusterKey::pack(kFullMask, sessions[i].attrs).raw()) {
        ++mismatches;
      }
    }
    EXPECT_EQ(mismatches, 0u);
  }
}

TEST(ColumnsBatch, PackRejectsValuesThatOverflowTheirField) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, test::Attrs{}, test::good_quality(), 3);
  SessionColumns columns = SessionColumns::from_sessions(sessions, 0);
  // VodLive has a 2-bit field; 4 does not fit.
  columns.attrs[static_cast<int>(AttrDim::kVodLive)][1] = 4;
  std::vector<std::uint64_t> keys(columns.size());
  for (const BatchKernel kernel : kBothKernels) {
    EXPECT_THROW(pack_leaf_keys_columns(columns, keys, kernel),
                 std::out_of_range);
  }
}

TEST(ColumnsBatch, KernelEntryPointsRejectMisSizedSpans) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, test::Attrs{}, test::good_quality(), 5);
  const SessionColumns columns = SessionColumns::from_sessions(sessions, 0);
  std::vector<std::uint8_t> bits(4);
  std::vector<std::uint64_t> keys(6);
  EXPECT_THROW(problem_bits_columns(columns, {}, bits),
               std::invalid_argument);
  EXPECT_THROW(pack_leaf_keys_columns(columns, keys), std::invalid_argument);
}

TEST(ColumnsFold, MatchesRowWiseFoldOnGeneratedTrace) {
  const SessionTable trace = medium_trace();
  const ProblemThresholds thresholds;
  for (std::uint32_t e = 0; e < trace.num_epochs(); ++e) {
    const std::span<const Session> sessions = trace.epoch(e);
    const LeafFold expected = fold_sessions(sessions, thresholds, e);
    const SessionColumns columns = SessionColumns::from_sessions(sessions, e);
    for (const BatchKernel kernel : kBothKernels) {
      expect_folds_identical(
          expected, fold_sessions_columns(columns, thresholds, e, kernel));
    }
  }
}

TEST(ColumnsFold, MatchesRowWiseFoldAcrossBlockBoundaries) {
  // The column fold runs in fixed-size blocks; sweep sizes around likely
  // block boundaries (powers of two +/- 1) so partial final blocks and
  // exact multiples are both covered.
  const ProblemThresholds thresholds;
  WorldConfig world_config;
  world_config.num_sites = 14;
  const World world = World::build(world_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch = 5'000;
  trace_config.diurnal_amplitude = 0.0;  // epoch 0 gets the full 5k
  const SessionTable trace =
      generate_trace(world, EventSchedule::none(1), trace_config);
  const std::span<const Session> all = trace.epoch(0);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{7}, std::size_t{2047}, std::size_t{2048},
        std::size_t{2049}, std::size_t{4096}, std::size_t{4101}}) {
    ASSERT_LE(n, all.size());
    const std::span<const Session> sessions = all.subspan(0, n);
    const LeafFold expected = fold_sessions(sessions, thresholds, 0);
    const SessionColumns columns = SessionColumns::from_sessions(sessions, 0);
    for (const BatchKernel kernel : kBothKernels) {
      expect_folds_identical(
          expected, fold_sessions_columns(columns, thresholds, 0, kernel));
    }
  }
}

TEST(ColumnsFold, EmptyBatchFoldsToEmptyLeaves) {
  const SessionColumns columns;
  const LeafFold fold = fold_sessions_columns(columns, {}, 5);
  EXPECT_EQ(fold.epoch, 5u);
  EXPECT_EQ(fold.root.sessions, 0u);
  EXPECT_EQ(fold.leaves.size(), 0u);
}

TEST(ColumnsFold, BatchKernelNameIsKnown) {
  const std::string_view name = batch_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
}

/// In-memory EpochColumnsSource over a SessionTable: the test double the
/// streaming pipeline differential runs against.
class TableColumnsSource : public EpochColumnsSource {
 public:
  explicit TableColumnsSource(const SessionTable& table) : table_(table) {}

  [[nodiscard]] std::uint32_t num_epochs() const override {
    return table_.num_epochs();
  }

  bool read_epoch(std::uint32_t e, SessionColumns& out) override {
    out.clear();
    for (const Session& s : table_.epoch(e)) out.push_back(s);
    return false;
  }

 private:
  const SessionTable& table_;
};

void expect_analyses_identical(const CriticalAnalysis& expected,
                               const CriticalAnalysis& actual) {
  EXPECT_EQ(expected.epoch, actual.epoch);
  EXPECT_EQ(expected.metric, actual.metric);
  EXPECT_EQ(expected.sessions, actual.sessions);
  EXPECT_EQ(expected.problem_sessions, actual.problem_sessions);
  EXPECT_EQ(expected.problem_sessions_in_pc, actual.problem_sessions_in_pc);
  EXPECT_EQ(expected.num_problem_clusters, actual.num_problem_clusters);
  EXPECT_EQ(expected.problem_cluster_keys, actual.problem_cluster_keys);
  // Bit-identical, not approximately equal: the streaming fold must feed
  // the exact same numbers into the attribution solver.
  EXPECT_EQ(expected.attributed_mass, actual.attributed_mass);
  ASSERT_EQ(expected.criticals.size(), actual.criticals.size());
  for (std::size_t i = 0; i < expected.criticals.size(); ++i) {
    EXPECT_EQ(expected.criticals[i].key.raw(), actual.criticals[i].key.raw());
    EXPECT_EQ(expected.criticals[i].attributed,
              actual.criticals[i].attributed);
    EXPECT_EQ(expected.criticals[i].stats, actual.criticals[i].stats);
  }
}

TEST(StreamingPipeline, MatchesInMemoryPipelineAtEveryWorkersShards) {
  const SessionTable trace = medium_trace(3, 4'000);
  PipelineConfig config;
  config.cluster_params.min_sessions = 40;

  config.workers = 1;
  config.shards = 1;
  const PipelineResult baseline = run_pipeline(trace, config);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const std::size_t shards : {0u, 1u, 2u, 5u}) {
      config.workers = workers;
      config.shards = shards;
      TableColumnsSource source{trace};
      const PipelineResult streamed = run_pipeline_streaming(source, config);
      ASSERT_EQ(streamed.num_epochs, baseline.num_epochs);
      EXPECT_TRUE(streamed.degraded_epochs.empty());
      for (const Metric m : kAllMetrics) {
        for (std::uint32_t e = 0; e < baseline.num_epochs; ++e) {
          SCOPED_TRACE("workers=" + std::to_string(workers) +
                       " shards=" + std::to_string(shards));
          expect_analyses_identical(baseline.at(m, e).analysis,
                                    streamed.at(m, e).analysis);
        }
      }
      // Cross-check the parallel in-memory pipeline at the same settings —
      // three-way agreement pins both paths to the serial baseline.
      const PipelineResult parallel = run_pipeline(trace, config);
      for (const Metric m : kAllMetrics) {
        for (std::uint32_t e = 0; e < baseline.num_epochs; ++e) {
          expect_analyses_identical(baseline.at(m, e).analysis,
                                    parallel.at(m, e).analysis);
        }
      }
    }
  }
}

TEST(StreamingPipeline, PropagatesDegradedEpochsFromSource) {
  /// Source that flags one epoch as degraded.
  class DegradedSource final : public TableColumnsSource {
   public:
    DegradedSource(const SessionTable& table, std::uint32_t degraded)
        : TableColumnsSource(table), degraded_(degraded) {}
    bool read_epoch(std::uint32_t e, SessionColumns& out) override {
      (void)TableColumnsSource::read_epoch(e, out);
      return e == degraded_;
    }

   private:
    std::uint32_t degraded_;
  };
  const SessionTable trace = medium_trace(3, 300);
  DegradedSource source{trace, 1};
  const PipelineResult result = run_pipeline_streaming(source, {});
  EXPECT_EQ(result.degraded_epochs, (std::vector<std::uint32_t>{1}));
  EXPECT_FALSE(result.is_degraded(0));
  EXPECT_TRUE(result.is_degraded(1));
}

TEST(StreamingPipeline, UnfoldedEngineAgreesToo) {
  // The streaming path materialises rows per epoch when the diagnostic
  // unfolded engine is selected; it must agree with the in-memory run.
  const SessionTable trace = medium_trace(2, 1'500);
  PipelineConfig config;
  config.engine.fold_leaves = false;
  config.cluster_params.min_sessions = 40;
  const PipelineResult baseline = run_pipeline(trace, config);
  TableColumnsSource source{trace};
  const PipelineResult streamed = run_pipeline_streaming(source, config);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < baseline.num_epochs; ++e) {
      expect_analyses_identical(baseline.at(m, e).analysis,
                                streamed.at(m, e).analysis);
    }
  }
}

}  // namespace
}  // namespace vq
