// Tests for the phase-transition critical-cluster algorithm (paper §3.2),
// built around hand-constructed scenarios mirroring the paper's Figures 4
// and 5.

#include "src/core/critical_cluster.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

constexpr std::uint8_t kCdnMask = dim_bit(AttrDim::kCdn);
constexpr std::uint8_t kAsnMask = dim_bit(AttrDim::kAsn);
constexpr std::uint8_t kSiteMask = dim_bit(AttrDim::kSite);
constexpr std::uint8_t kCdnAsnMask = kCdnMask | kAsnMask;

struct Scenario {
  std::vector<Session> sessions;
  ProblemThresholds thresholds;
  ProblemClusterParams params{.ratio_multiplier = 1.5, .min_sessions = 50};

  void add(const Attrs& attrs, std::size_t bad, std::size_t good) {
    test::add_sessions(sessions, 0, attrs, test::bad_buffering(), bad);
    test::add_sessions(sessions, 0, attrs, test::good_quality(), good);
  }

  [[nodiscard]] CriticalAnalysis run() const {
    const auto table = aggregate_epoch(sessions, thresholds, {}, 0);
    return find_critical_clusters(sessions, table, thresholds, params,
                                  Metric::kBufRatio);
  }

  [[nodiscard]] const CriticalRecord* find(const CriticalAnalysis& analysis,
                                           std::uint8_t mask,
                                           const Attrs& attrs) const {
    const ClusterKey key = ClusterKey::pack(mask, attrs.vec());
    const auto it = std::find_if(
        analysis.criticals.begin(), analysis.criticals.end(),
        [&](const CriticalRecord& c) { return c.key == key; });
    return it == analysis.criticals.end() ? nullptr : &*it;
  }
};

// Paper Figure 4: one bad CDN manifests as distinct (ASN, CDN) problem
// clusters; the algorithm must attribute everything to the CDN alone.
TEST(CriticalCluster, AttributesSharedCauseToParent) {
  Scenario s;
  s.add(Attrs{.cdn = 1, .asn = 1}, 60, 40);
  s.add(Attrs{.cdn = 1, .asn = 2}, 60, 40);
  s.add(Attrs{.cdn = 2, .asn = 1}, 10, 390);
  s.add(Attrs{.cdn = 2, .asn = 2}, 10, 390);

  const CriticalAnalysis analysis = s.run();
  ASSERT_EQ(analysis.criticals.size(), 1u);
  const CriticalRecord* cdn1 = s.find(analysis, kCdnMask, Attrs{.cdn = 1});
  ASSERT_NE(cdn1, nullptr);
  // All 120 CDN1 problem sessions attributed to the CDN, none split across
  // the per-ASN children.
  EXPECT_DOUBLE_EQ(cdn1->attributed, 120.0);
  EXPECT_EQ(cdn1->stats.sessions, 200u);
}

// Paper Figure 5: the (CDN1, ASN1) pair is bad while CDN1 and ASN1 overall
// stay below the problem threshold -> the pair is the critical cluster.
TEST(CriticalCluster, FindsPhaseTransitionAtAttributePair) {
  Scenario s;
  s.add(Attrs{.cdn = 1, .asn = 1}, 60, 40);     // 0.60
  s.add(Attrs{.cdn = 1, .asn = 2}, 90, 810);    // 0.10 background
  s.add(Attrs{.cdn = 2, .asn = 1}, 90, 810);    // 0.10
  s.add(Attrs{.cdn = 2, .asn = 2}, 210, 1890);  // 0.10

  const CriticalAnalysis analysis = s.run();
  // Global = 450/4000 = 0.1125, flag threshold ~0.169: CDN1 is 150/1000 =
  // 0.15 (not flagged), ASN1 likewise; only the pair crosses.
  ASSERT_EQ(analysis.criticals.size(), 1u);
  const CriticalRecord* pair =
      s.find(analysis, kCdnAsnMask, Attrs{.cdn = 1, .asn = 1});
  ASSERT_NE(pair, nullptr);
  EXPECT_DOUBLE_EQ(pair->attributed, 60.0);
}

// "Once removing it every ancestor is not a problem cluster": when the
// parent stays bad even without the child cell, the parent (not the child)
// is the critical cluster.
TEST(CriticalCluster, RemovalTestRejectsChildOfIndependentlyBadParent) {
  Scenario s;
  // Both ASNs also carry healthy CDN2 traffic so the ASN clusters stay
  // below threshold and only the CDN explanation survives.
  s.add(Attrs{.cdn = 1, .asn = 1}, 60, 40);
  s.add(Attrs{.cdn = 1, .asn = 2}, 60, 40);
  s.add(Attrs{.cdn = 2, .asn = 1}, 10, 390);
  s.add(Attrs{.cdn = 2, .asn = 2}, 10, 390);

  const CriticalAnalysis analysis = s.run();
  ASSERT_EQ(analysis.criticals.size(), 1u);
  EXPECT_NE(s.find(analysis, kCdnMask, Attrs{.cdn = 1}), nullptr);
  EXPECT_EQ(s.find(analysis, kCdnAsnMask, Attrs{.cdn = 1, .asn = 1}),
            nullptr);
}

// Fully correlated attributes (a site served by exactly one CDN): both
// minimal explanations are kept and the mass is divided equally — the
// paper's explicit corner case.
TEST(CriticalCluster, CorrelatedAttributesSplitAttributionEqually) {
  Scenario s;
  s.add(Attrs{.site = 1, .cdn = 1}, 100, 100);
  s.add(Attrs{.site = 2, .cdn = 2}, 40, 760);

  const CriticalAnalysis analysis = s.run();
  ASSERT_EQ(analysis.criticals.size(), 2u);
  const CriticalRecord* site = s.find(analysis, kSiteMask, Attrs{.site = 1});
  const CriticalRecord* cdn = s.find(analysis, kCdnMask, Attrs{.cdn = 1});
  ASSERT_NE(site, nullptr);
  ASSERT_NE(cdn, nullptr);
  EXPECT_DOUBLE_EQ(site->attributed, 50.0);
  EXPECT_DOUBLE_EQ(cdn->attributed, 50.0);
  EXPECT_DOUBLE_EQ(analysis.attributed_mass, 100.0);
}

// A significant clean descendant within the session's cone vetoes the
// ancestor for that session ("every descendant is a problem cluster").
TEST(CriticalCluster, CleanSignificantDescendantBlocksAttribution) {
  Scenario s;
  // CDN1 is bad only on conn type 0; its conn-1 slice is large and clean.
  s.add(Attrs{.cdn = 1, .conn = 0}, 60, 40);
  s.add(Attrs{.cdn = 1, .conn = 1}, 3, 97);
  s.add(Attrs{.cdn = 2, .conn = 0}, 57, 743);

  const CriticalAnalysis analysis = s.run();
  // Global = 120/1000 = 0.12, threshold 0.18. CDN1 = 63/200 flagged.
  // conn-0 problem sessions attribute to CDN1; the 3 conn-1 problem
  // sessions see the clean significant (CDN1, conn=1) descendant and stay
  // unattributed.
  const CriticalRecord* cdn1 = s.find(analysis, kCdnMask, Attrs{.cdn = 1});
  ASSERT_NE(cdn1, nullptr);
  EXPECT_DOUBLE_EQ(cdn1->attributed, 60.0);
  EXPECT_DOUBLE_EQ(analysis.attributed_mass, 60.0);
  EXPECT_EQ(analysis.problem_sessions, 120u);
  EXPECT_EQ(analysis.problem_sessions_in_pc, 63u);
}

TEST(CriticalCluster, NoProblemsYieldEmptyAnalysis) {
  Scenario s;
  s.add(Attrs{.cdn = 1}, 0, 100);
  const CriticalAnalysis analysis = s.run();
  EXPECT_EQ(analysis.problem_sessions, 0u);
  EXPECT_TRUE(analysis.criticals.empty());
  EXPECT_EQ(analysis.attributed_mass, 0.0);
  EXPECT_EQ(analysis.critical_cluster_coverage(), 0.0);
}

TEST(CriticalCluster, UniformBackgroundProducesNoCriticals) {
  // Problems spread evenly: nothing is elevated 1.5x above global.
  Scenario s;
  s.add(Attrs{.cdn = 1, .asn = 1}, 10, 90);
  s.add(Attrs{.cdn = 1, .asn = 2}, 10, 90);
  s.add(Attrs{.cdn = 2, .asn = 1}, 10, 90);
  s.add(Attrs{.cdn = 2, .asn = 2}, 10, 90);
  const CriticalAnalysis analysis = s.run();
  EXPECT_TRUE(analysis.criticals.empty());
  EXPECT_EQ(analysis.problem_sessions, 40u);
  EXPECT_EQ(analysis.problem_sessions_in_pc, 0u);
}

TEST(CriticalCluster, AttributedMassNeverExceedsProblemSessions) {
  Scenario s;
  s.add(Attrs{.site = 1, .cdn = 1, .asn = 1}, 80, 20);
  s.add(Attrs{.site = 2, .cdn = 1, .asn = 2}, 70, 30);
  s.add(Attrs{.site = 3, .cdn = 2, .asn = 3}, 30, 870);
  const CriticalAnalysis analysis = s.run();
  EXPECT_LE(analysis.attributed_mass,
            static_cast<double>(analysis.problem_sessions) + 1e-9);
  EXPECT_LE(analysis.attributed_mass,
            static_cast<double>(analysis.problem_sessions_in_pc) + 1e-9);
  EXPECT_GE(analysis.critical_cluster_coverage(), 0.0);
  EXPECT_LE(analysis.critical_cluster_coverage(), 1.0);
}

TEST(CriticalCluster, CriticalsSortedByAttributedMass) {
  Scenario s;
  s.add(Attrs{.cdn = 1, .asn = 1}, 90, 10);
  s.add(Attrs{.cdn = 2, .asn = 2}, 60, 40);
  s.add(Attrs{.cdn = 3, .asn = 3}, 50, 950);
  const CriticalAnalysis analysis = s.run();
  for (std::size_t i = 1; i < analysis.criticals.size(); ++i) {
    EXPECT_GE(analysis.criticals[i - 1].attributed,
              analysis.criticals[i].attributed);
  }
}

TEST(CriticalCandidateMasks, DirectInspection) {
  Scenario s;
  s.add(Attrs{.cdn = 1, .asn = 1}, 60, 40);
  s.add(Attrs{.cdn = 1, .asn = 2}, 90, 810);
  s.add(Attrs{.cdn = 2, .asn = 1}, 90, 810);
  s.add(Attrs{.cdn = 2, .asn = 2}, 210, 1890);
  const auto table = aggregate_epoch(s.sessions, s.thresholds, {}, 0);

  const ClusterKey bad_leaf =
      ClusterKey::pack(kFullMask, Attrs{.cdn = 1, .asn = 1}.vec());
  const auto candidates = critical_candidate_masks(bad_leaf, table, s.params,
                                                   Metric::kBufRatio);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], kCdnAsnMask);

  // A background leaf has no flagged cluster anywhere in its cone.
  const ClusterKey clean_leaf =
      ClusterKey::pack(kFullMask, Attrs{.cdn = 2, .asn = 2}.vec());
  EXPECT_TRUE(critical_candidate_masks(clean_leaf, table, s.params,
                                       Metric::kBufRatio)
                  .empty());
}

TEST(CriticalCluster, MetricsAnalysedIndependently) {
  // CDN1 fails joins; ASN1 has low bitrate. Each metric should produce its
  // own critical cluster, and they must not bleed into each other.
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 2},
                     test::failed_join(), 60);
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 2},
                     test::good_quality(), 40);
  test::add_sessions(sessions, 0, Attrs{.cdn = 2, .asn = 1},
                     test::bad_bitrate(), 60);
  test::add_sessions(sessions, 0, Attrs{.cdn = 2, .asn = 1},
                     test::good_quality(), 40);
  test::add_sessions(sessions, 0, Attrs{.cdn = 3, .asn = 3},
                     test::good_quality(), 800);

  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 50};
  const auto table = aggregate_epoch(sessions, thresholds, {}, 0);

  const auto fails = find_critical_clusters(sessions, table, thresholds,
                                            params, Metric::kJoinFailure);
  ASSERT_FALSE(fails.criticals.empty());
  for (const auto& c : fails.criticals) {
    EXPECT_TRUE(c.key.has(AttrDim::kCdn) || c.key.has(AttrDim::kAsn));
    if (c.key.has(AttrDim::kCdn)) {
      EXPECT_EQ(c.key.value(AttrDim::kCdn), 1);
    }
  }

  const auto bitrate = find_critical_clusters(sessions, table, thresholds,
                                              params, Metric::kBitrate);
  ASSERT_FALSE(bitrate.criticals.empty());
  for (const auto& c : bitrate.criticals) {
    if (c.key.has(AttrDim::kCdn)) {
      EXPECT_EQ(c.key.value(AttrDim::kCdn), 2);
    }
  }
}

}  // namespace
}  // namespace vq
