// Parameterized property suites (TEST_P): invariants that must hold across
// sweeps of thresholds, significance floors, and random traces — including
// the paper's §2 claim that the qualitative structure is threshold-stable.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/pipeline.h"
#include "src/core/prevalence.h"
#include "src/core/whatif.h"
#include "src/gen/tracegen.h"

namespace vq {
namespace {

SessionTable shared_trace() {
  static const SessionTable trace = [] {
    WorldConfig world_config;
    world_config.num_sites = 50;
    world_config.num_cdns = 8;
    world_config.num_asns = 120;
    const World world = World::build(world_config);
    EventScheduleConfig event_config;
    event_config.num_epochs = 6;
    event_config.events_per_epoch = 1.5;
    const EventSchedule events = EventSchedule::generate(world, event_config);
    TraceConfig trace_config;
    trace_config.num_epochs = 6;
    trace_config.sessions_per_epoch = 2'000;
    return generate_trace(world, events, trace_config);
  }();
  return trace;
}

// ---------------------------------------------------------------------------
// Sweep the problem-cluster parameters.
struct ClusterParamCase {
  double ratio_multiplier;
  std::uint32_t min_sessions;
};

class ClusterParamSweep : public ::testing::TestWithParam<ClusterParamCase> {
};

TEST_P(ClusterParamSweep, PipelineInvariantsHoldForAnyParams) {
  const auto [multiplier, min_sessions] = GetParam();
  PipelineConfig config;
  config.cluster_params.ratio_multiplier = multiplier;
  config.cluster_params.min_sessions = min_sessions;
  const SessionTable trace = shared_trace();
  const PipelineResult result = run_pipeline(trace, config);

  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const CriticalAnalysis& a = result.at(m, e).analysis;
      // Chain: attributed <= in-problem-cluster <= all problem sessions.
      EXPECT_LE(a.attributed_mass,
                static_cast<double>(a.problem_sessions_in_pc) + 1e-6);
      EXPECT_LE(a.problem_sessions_in_pc, a.problem_sessions);
      // Critical clusters are a subset of problem clusters.
      EXPECT_LE(a.criticals.size(),
                static_cast<std::size_t>(a.num_problem_clusters));
      // Coverages are proper fractions (tolerance: the attributed mass is a
      // sum of fractional 1/k shares and can exceed the integer count by
      // rounding dust).
      EXPECT_GE(a.problem_cluster_coverage(), 0.0);
      EXPECT_LE(a.problem_cluster_coverage(), 1.0);
      EXPECT_GE(a.critical_cluster_coverage(), 0.0);
      EXPECT_LE(a.critical_cluster_coverage(), 1.0 + 1e-9);
      // Every reported critical satisfies the significance floor.
      for (const CriticalRecord& c : a.criticals) {
        EXPECT_GE(c.stats.sessions, min_sessions);
        EXPECT_GT(c.attributed, 0.0);
      }
    }
  }
}

TEST_P(ClusterParamSweep, StricterParamsNeverFindMoreProblemClusters) {
  const auto [multiplier, min_sessions] = GetParam();
  const SessionTable trace = shared_trace();
  PipelineConfig loose;
  loose.cluster_params.ratio_multiplier = multiplier;
  loose.cluster_params.min_sessions = min_sessions;
  PipelineConfig strict = loose;
  strict.cluster_params.ratio_multiplier = multiplier * 1.5;
  strict.cluster_params.min_sessions = min_sessions * 2;

  const PipelineResult a = run_pipeline(trace, loose);
  const PipelineResult b = run_pipeline(trace, strict);
  for (const Metric m : kAllMetrics) {
    EXPECT_LE(b.aggregates(m).mean_problem_clusters,
              a.aggregates(m).mean_problem_clusters + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, ClusterParamSweep,
    ::testing::Values(ClusterParamCase{1.2, 30}, ClusterParamCase{1.5, 30},
                      ClusterParamCase{1.5, 100}, ClusterParamCase{2.0, 50},
                      ClusterParamCase{3.0, 200}),
    [](const ::testing::TestParamInfo<ClusterParamCase>& info) {
      return "mult" +
             std::to_string(static_cast<int>(
                 info.param.ratio_multiplier * 10)) +
             "_min" + std::to_string(info.param.min_sessions);
    });

// ---------------------------------------------------------------------------
// Sweep the problem-session thresholds (§2 robustness claim).
struct ThresholdCase {
  double bufratio;
  double bitrate_kbps;
  double join_time_ms;
};

class ThresholdSweep : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweep, SkewAndCoverageStructureIsThresholdStable) {
  const auto [bufratio, bitrate, join_time] = GetParam();
  PipelineConfig config;
  config.thresholds.max_buffering_ratio = bufratio;
  config.thresholds.min_bitrate_kbps = bitrate;
  config.thresholds.max_join_time_ms = join_time;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result = run_pipeline(shared_trace(), config);

  for (const Metric m : kAllMetrics) {
    const auto agg = result.aggregates(m);
    // Structure, not values: coverage fractions stay proper, and critical
    // clusters never outnumber problem clusters.
    EXPECT_LE(agg.mean_critical_clusters,
              agg.mean_problem_clusters + 1e-9);
    EXPECT_LE(agg.mean_critical_coverage, agg.mean_problem_coverage + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdGrid, ThresholdSweep,
    ::testing::Values(ThresholdCase{0.02, 500, 5'000},
                      ThresholdCase{0.05, 700, 10'000},
                      ThresholdCase{0.10, 1'000, 20'000},
                      ThresholdCase{0.20, 1'500, 30'000}),
    [](const ::testing::TestParamInfo<ThresholdCase>& info) {
      return "buf" + std::to_string(static_cast<int>(
                         info.param.bufratio * 100)) +
             "_br" + std::to_string(static_cast<int>(
                         info.param.bitrate_kbps)) +
             "_jt" + std::to_string(static_cast<int>(
                         info.param.join_time_ms));
    });

// ---------------------------------------------------------------------------
// What-if sweeps across metrics and rankings.
class WhatIfSweep
    : public ::testing::TestWithParam<std::tuple<Metric, RankBy>> {};

TEST_P(WhatIfSweep, AlleviationIsMonotoneAndBounded) {
  const auto [metric, rank_by] = GetParam();
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result = run_pipeline(shared_trace(), config);
  const WhatIfAnalyzer whatif{result};

  const double fractions[] = {0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
  const auto sweep = whatif.topk_sweep(metric, rank_by, fractions);
  ASSERT_EQ(sweep.size(), 7u);
  double prev = -1.0;
  for (const auto& point : sweep) {
    EXPECT_GE(point.alleviated_fraction, prev - 1e-12);
    EXPECT_GE(point.alleviated_fraction, 0.0);
    EXPECT_LE(point.alleviated_fraction, 1.0);
    prev = point.alleviated_fraction;
  }
}

TEST_P(WhatIfSweep, ReactiveDelayDegradesMonotonically) {
  const auto [metric, rank_by] = GetParam();
  (void)rank_by;
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result = run_pipeline(shared_trace(), config);
  const WhatIfAnalyzer whatif{result};

  double prev = 1e9;
  for (const std::uint32_t delay : {0u, 1u, 2u, 4u}) {
    const auto outcome = whatif.reactive(metric, delay);
    EXPECT_LE(outcome.alleviated_fraction, prev + 1e-12);
    EXPECT_LE(outcome.alleviated_fraction,
              outcome.potential_fraction + 1e-12);
    prev = outcome.alleviated_fraction;
    // Per-epoch accounting: after_reactive = original - alleviated >= 0,
    // and outside_critical <= original.
    for (std::size_t e = 0; e < outcome.original.size(); ++e) {
      EXPECT_GE(outcome.after_reactive[e], -1e-9);
      EXPECT_LE(outcome.after_reactive[e], outcome.original[e] + 1e-9);
      EXPECT_GE(outcome.outside_critical[e], -1e-6);
      EXPECT_LE(outcome.outside_critical[e], outcome.original[e] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricRankGrid, WhatIfSweep,
    ::testing::Combine(::testing::Values(Metric::kBufRatio, Metric::kBitrate,
                                         Metric::kJoinTime,
                                         Metric::kJoinFailure),
                       ::testing::Values(RankBy::kCoverage,
                                         RankBy::kPrevalence,
                                         RankBy::kPersistence)),
    [](const ::testing::TestParamInfo<std::tuple<Metric, RankBy>>& info) {
      return std::string(metric_name(std::get<0>(info.param))) + "_" +
             std::string(rank_by_name(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Engine arity-cap sweep: capping the lattice can only reduce the cluster
// population, and global counters never change.
class AritySweep : public ::testing::TestWithParam<int> {};

TEST_P(AritySweep, CapReducesClustersButNotGlobals) {
  const int arity = GetParam();
  const SessionTable trace = shared_trace();
  PipelineConfig full;
  full.cluster_params.min_sessions = 50;
  PipelineConfig capped = full;
  capped.engine.max_arity = arity;

  const PipelineResult a = run_pipeline(trace, full);
  const PipelineResult b = run_pipeline(trace, capped);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < a.num_epochs; ++e) {
      EXPECT_EQ(a.at(m, e).analysis.problem_sessions,
                b.at(m, e).analysis.problem_sessions);
      EXPECT_EQ(a.at(m, e).analysis.global_ratio,
                b.at(m, e).analysis.global_ratio);
      EXPECT_LE(b.at(m, e).analysis.num_problem_clusters,
                a.at(m, e).analysis.num_problem_clusters);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ArityGrid, AritySweep, ::testing::Values(1, 2, 3, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "arity" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vq
