#include "src/gen/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

TEST(TraceIo, RoundTripsGeneratedTrace) {
  WorldConfig world_config;
  world_config.num_sites = 20;
  world_config.num_cdns = 5;
  world_config.num_asns = 30;
  const World world = World::build(world_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 2;
  trace_config.sessions_per_epoch = 200;
  const SessionTable original =
      generate_trace(world, EventSchedule::none(2), trace_config);

  std::stringstream buffer;
  write_trace_csv(buffer, original, world.schema());
  const LoadedTrace loaded = read_trace_csv(buffer);

  ASSERT_EQ(loaded.table.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Session& a = original.sessions()[i];
    const Session& b = loaded.table.sessions()[i];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.quality.join_failed, b.quality.join_failed);
    EXPECT_FLOAT_EQ(a.quality.buffering_ratio, b.quality.buffering_ratio);
    EXPECT_FLOAT_EQ(a.quality.bitrate_kbps, b.quality.bitrate_kbps);
    EXPECT_FLOAT_EQ(a.quality.join_time_ms, b.quality.join_time_ms);
    // Ids may be remapped (first-seen order); names must agree.
    for (int d = 0; d < kNumDims; ++d) {
      const auto dim = static_cast<AttrDim>(d);
      EXPECT_EQ(world.schema().name(dim, a.attrs[dim]),
                loaded.schema.name(dim, b.attrs[dim]));
    }
  }
}

TEST(TraceIo, WritesHeaderAndOneRowPerSession) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "v0");
  }
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{}, test::good_quality(), 3);
  std::stringstream buffer;
  write_trace_csv(buffer, SessionTable{std::move(sessions)}, schema);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(buffer, line)) ++lines;
  EXPECT_EQ(lines, 4u);
}

TEST(TraceIo, EmptyInputThrows) {
  std::stringstream buffer;
  EXPECT_THROW((void)read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, WrongHeaderThrows) {
  std::stringstream buffer{"nope,nope\n"};
  EXPECT_THROW((void)read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, WrongFieldCountThrows) {
  std::stringstream buffer;
  buffer << "epoch,site,cdn,asn,conn_type,player,browser,vod_live,"
            "buffering_ratio,bitrate_kbps,join_time_ms,join_failed\n"
         << "0,a,b,c\n";
  EXPECT_THROW((void)read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, BadNumericFieldThrows) {
  std::stringstream buffer;
  buffer << "epoch,site,cdn,asn,conn_type,player,browser,vod_live,"
            "buffering_ratio,bitrate_kbps,join_time_ms,join_failed\n"
         << "zero,s,c,a,t,p,b,VoD,0.1,1000,2000,0\n";
  EXPECT_THROW((void)read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream buffer;
  buffer << "epoch,site,cdn,asn,conn_type,player,browser,vod_live,"
            "buffering_ratio,bitrate_kbps,join_time_ms,join_failed\n"
         << "0,s,c,a,t,p,b,VoD,0.1,1000,2000,0\n"
         << "\n"
         << "1,s,c,a,t,p,b,Live,0.2,500,3000,1\n";
  const LoadedTrace loaded = read_trace_csv(buffer);
  ASSERT_EQ(loaded.table.size(), 2u);
  EXPECT_EQ(loaded.table.sessions()[1].epoch, 1u);
  EXPECT_TRUE(loaded.table.sessions()[1].quality.join_failed);
  EXPECT_EQ(loaded.schema.name(AttrDim::kVodLive, 1), "Live");
}

TEST(TraceIo, RejectsAttributeNamesThatWouldCorruptTheCsv) {
  // A comma (or newline) inside an attribute name would silently shift every
  // later column on read-back; the writer must refuse up front.
  for (const std::string bad : {"evil,name", "line\nbreak", "cr\rhere"}) {
    AttributeSchema schema;
    for (int d = 0; d < kNumDims; ++d) {
      (void)schema.intern(static_cast<AttrDim>(d), "ok");
    }
    (void)schema.intern(AttrDim::kAsn, bad);
    std::vector<Session> sessions;
    test::add_sessions(sessions, 0, Attrs{.asn = 1}, test::good_quality(), 1);
    std::stringstream buffer;
    EXPECT_THROW(
        write_trace_csv(buffer, SessionTable{std::move(sessions)}, schema),
        std::invalid_argument)
        << bad;
  }
}

TEST(TraceIo, PunctuatedButCommaFreeNamesRoundTrip) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "plain");
  }
  (void)schema.intern(AttrDim::kAsn, "AS 7922 (Comcast-like; res.)");
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.asn = 1}, test::good_quality(), 2);
  std::stringstream buffer;
  write_trace_csv(buffer, SessionTable{std::move(sessions)}, schema);
  const LoadedTrace loaded = read_trace_csv(buffer);
  ASSERT_EQ(loaded.table.size(), 2u);
  EXPECT_EQ(loaded.schema.name(AttrDim::kAsn,
                               loaded.table.sessions()[0].attrs[AttrDim::kAsn]),
            "AS 7922 (Comcast-like; res.)");
}

TEST(TraceIo, FileRoundTrip) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "x");
  }
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{}, test::failed_join(), 2);
  const auto path =
      std::filesystem::temp_directory_path() / "vidqual_trace_io_test.csv";
  write_trace_csv(path, SessionTable{std::move(sessions)}, schema);
  const LoadedTrace loaded = read_trace_csv(path);
  EXPECT_EQ(loaded.table.size(), 2u);
  EXPECT_TRUE(loaded.table.sessions()[0].quality.join_failed);
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_csv(std::filesystem::path{
                   "/nonexistent/vidqual.csv"}),
               std::runtime_error);
}

}  // namespace
}  // namespace vq
