// Fault-injection harness for the ingest chaos tests.
//
// FaultyStreambuf wraps an in-memory byte string and injects the failure
// modes of real telemetry collection:
//   * truncation        — the stream simply ends at a chosen offset;
//   * bit flips         — one byte is XOR-corrupted in place;
//   * short reads       — underflow serves at most `chunk` bytes at a time,
//                         so any reader assuming one read() fills its buffer
//                         breaks (std::istream::read retries internally,
//                         which is exactly what we want to prove we rely on);
//   * transient I/O faults — underflow throws when the read position
//                         reaches `fail_at` (an istream translates that into
//                         badbit), for `fail_count` occurrences.
//
// The harness is reader-agnostic: tests drive read_trace_csv/_binary and
// the robust_io readers over it and assert "positioned exception or
// quarantined row — never a crash" (tests/test_fault_injection.cpp), with
// CI running the sweep under ASan/UBSan.

#pragma once

#include <algorithm>
#include <cstddef>
#include <istream>
#include <stdexcept>
#include <string>
#include <utility>

namespace vq::test {

class FaultyStreambuf : public std::streambuf {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Options {
    std::size_t truncate_at = kNone;  // stream ends at this offset
    std::size_t flip_offset = kNone;  // XOR flip_mask into this byte
    unsigned char flip_mask = 0x01;
    std::size_t chunk = 0;       // max bytes served per underflow (0 = all)
    std::size_t fail_at = kNone; // throw when the read position reaches this
    int fail_count = 1;          // how often fail_at fires (transient = 1)
  };

  FaultyStreambuf(std::string bytes, const Options& options)
      : data_(std::move(bytes)), options_(options) {
    if (options_.flip_offset != kNone && options_.flip_offset < data_.size()) {
      data_[options_.flip_offset] =
          static_cast<char>(static_cast<unsigned char>(
                                data_[options_.flip_offset]) ^
                            options_.flip_mask);
    }
    if (options_.truncate_at != kNone &&
        options_.truncate_at < data_.size()) {
      data_.resize(options_.truncate_at);
    }
  }

  [[nodiscard]] int faults_fired() const noexcept { return faults_fired_; }

 protected:
  // Seek support (required by the columnar reader, which jumps to the
  // footer index and then to per-epoch chunks).  Positions are absolute
  // offsets into the post-truncation byte string, so a seek past the
  // truncation point fails exactly like a seek past EOF on a real file.
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if ((which & std::ios_base::in) == 0) return pos_type(off_type(-1));
    const off_type cur =
        static_cast<off_type>(pos_) - (egptr() - gptr());
    off_type target = -1;
    if (dir == std::ios_base::beg) target = off;
    else if (dir == std::ios_base::cur) target = cur + off;
    else if (dir == std::ios_base::end)
      target = static_cast<off_type>(data_.size()) + off;
    if (target < 0 || target > static_cast<off_type>(data_.size())) {
      return pos_type(off_type(-1));
    }
    pos_ = static_cast<std::size_t>(target);
    setg(nullptr, nullptr, nullptr);  // discard the stale get area
    return pos_type(target);
  }

  pos_type seekpos(pos_type sp, std::ios_base::openmode which) override {
    return seekoff(off_type(sp), std::ios_base::beg, which);
  }

  int_type underflow() override {
    if (pos_ >= data_.size()) return traits_type::eof();
    std::size_t n = data_.size() - pos_;
    if (options_.chunk != 0) n = std::min(n, options_.chunk);
    if (options_.fail_at != kNone && faults_fired_ < options_.fail_count) {
      if (pos_ >= options_.fail_at) {
        ++faults_fired_;
        throw std::runtime_error{"injected I/O fault"};
      }
      // Stop the chunk just short of the fault so it fires at exactly
      // fail_at, byte-precise regardless of chunking.
      n = std::min(n, options_.fail_at - pos_);
    }
    char* base = data_.data() + pos_;
    setg(base, base, base + n);
    pos_ += n;
    return traits_type::to_int_type(*base);
  }

 private:
  std::string data_;
  Options options_;
  std::size_t pos_ = 0;
  int faults_fired_ = 0;
};

/// Owning istream over a FaultyStreambuf (member order matters: the buffer
/// must outlive — and be constructed before — the stream head).
class FaultyStream {
 public:
  FaultyStream(std::string bytes, const FaultyStreambuf::Options& options)
      : buf_(std::move(bytes), options), in_(&buf_) {}

  [[nodiscard]] std::istream& stream() noexcept { return in_; }
  [[nodiscard]] const FaultyStreambuf& buf() const noexcept { return buf_; }

 private:
  FaultyStreambuf buf_;
  std::istream in_;
};

}  // namespace vq::test
