// Delivery-simulation substrate: bandwidth process, ABR controllers,
// delivery conditions, playback simulation.

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/simnet/abr.h"
#include "src/simnet/bandwidth.h"
#include "src/simnet/cdn.h"
#include "src/simnet/player.h"

namespace vq {
namespace {

TEST(BandwidthProcess, AlwaysPositive) {
  BandwidthProcess process{{.mean_kbps = 100.0, .sigma = 1.0},
                           Xoshiro256ss{1}};
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(process.next_kbps(), 0.0);
}

TEST(BandwidthProcess, LongRunMeanMatchesConfigured) {
  BandwidthProcess process{
      {.mean_kbps = 5'000.0, .sigma = 0.4, .reversion = 0.6},
      Xoshiro256ss{2}};
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += process.next_kbps();
  EXPECT_NEAR(sum / kN, 5'000.0, 5'000.0 * 0.03);
}

TEST(BandwidthProcess, ZeroSigmaIsConstant) {
  BandwidthProcess process{{.mean_kbps = 1'000.0, .sigma = 0.0},
                           Xoshiro256ss{3}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(process.next_kbps(), 1'000.0, 1e-9);
  }
}

TEST(BandwidthProcess, DeterministicGivenSeed) {
  BandwidthProcess a{{.mean_kbps = 800.0, .sigma = 0.5}, Xoshiro256ss{7}};
  BandwidthProcess b{{.mean_kbps = 800.0, .sigma = 0.5}, Xoshiro256ss{7}};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_kbps(), b.next_kbps());
}

TEST(BandwidthProcess, TemporallyCorrelated) {
  // With strong persistence (low reversion), consecutive samples must
  // correlate far more than independent draws.
  BandwidthProcess process{
      {.mean_kbps = 1'000.0, .sigma = 0.5, .reversion = 0.1},
      Xoshiro256ss{11}};
  double prev = process.next_kbps();
  double same_side = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const double next = process.next_kbps();
    if ((next > 1'000.0) == (prev > 1'000.0)) ++same_side;
    prev = next;
  }
  EXPECT_GT(same_side / kN, 0.7);
}

TEST(AbrController, RejectsBadLadders) {
  AbrConfig empty;
  empty.ladder_kbps.clear();
  EXPECT_THROW(AbrController{empty}, std::invalid_argument);
  AbrConfig unsorted;
  unsorted.ladder_kbps = {800, 400};
  EXPECT_THROW(AbrController{unsorted}, std::invalid_argument);
}

TEST(AbrController, FixedSingleAlwaysReturnsTheRung) {
  AbrConfig config;
  config.kind = AbrKind::kFixedSingle;
  config.ladder_kbps = {1'800};
  AbrController abr{config};
  EXPECT_EQ(abr.initial_bitrate(100.0), 1'800.0);
  EXPECT_EQ(abr.next_bitrate(50.0, 0.0), 1'800.0);
  EXPECT_EQ(abr.next_bitrate(100'000.0, 30.0), 1'800.0);
}

TEST(AbrController, RateBasedPicksHighestRungBelowSafeEstimate) {
  AbrConfig config;
  config.kind = AbrKind::kRateBased;
  config.ladder_kbps = {400, 800, 1'500, 2'500};
  config.safety_factor = 0.8;
  config.ewma_alpha = 1.0;  // estimate == latest observation
  AbrController abr{config};
  (void)abr.initial_bitrate(1'000.0);
  EXPECT_EQ(abr.next_bitrate(2'000.0, 10.0), 1'500.0);  // 0.8*2000 = 1600
  EXPECT_EQ(abr.next_bitrate(600.0, 10.0), 400.0);      // 0.8*600 = 480
  EXPECT_EQ(abr.next_bitrate(10'000.0, 10.0), 2'500.0);
  EXPECT_EQ(abr.next_bitrate(100.0, 10.0), 400.0);  // clamps to lowest
}

TEST(AbrController, RateBasedEwmaSmoothsEstimate) {
  AbrConfig config;
  config.kind = AbrKind::kRateBased;
  config.ladder_kbps = {400, 800, 1'500, 2'500};
  config.safety_factor = 1.0;
  config.ewma_alpha = 0.5;
  AbrController abr{config};
  (void)abr.initial_bitrate(400.0);
  // One huge sample moves the estimate to (0.5*10000 + 0.5*400) = 5200.
  EXPECT_EQ(abr.next_bitrate(10'000.0, 10.0), 2'500.0);
  // A crash to 100 kbps: estimate (0.5*100 + 0.5*5200) = 2650 -> still 2500.
  EXPECT_EQ(abr.next_bitrate(100.0, 10.0), 2'500.0);
  // Second bad sample drags it down to 1375 -> 800.
  EXPECT_EQ(abr.next_bitrate(100.0, 10.0), 800.0);
}

TEST(AbrController, BufferBasedMapsOccupancyToLadder) {
  AbrConfig config;
  config.kind = AbrKind::kBufferBased;
  config.ladder_kbps = {400, 800, 1'500, 2'500, 4'500};
  config.buffer_low_s = 5.0;
  config.buffer_high_s = 20.0;
  AbrController abr{config};
  (void)abr.initial_bitrate(2'000.0);
  EXPECT_EQ(abr.next_bitrate(1'000.0, 0.0), 400.0);      // reservoir
  EXPECT_EQ(abr.next_bitrate(1'000.0, 5.0), 400.0);
  EXPECT_EQ(abr.next_bitrate(1'000.0, 25.0), 4'500.0);   // above cushion
  EXPECT_EQ(abr.next_bitrate(1'000.0, 12.5), 1'500.0);   // middle
}

TEST(AbrController, AlwaysReturnsALadderRung) {
  for (const AbrKind kind :
       {AbrKind::kFixedSingle, AbrKind::kRateBased, AbrKind::kBufferBased}) {
    AbrConfig config;
    config.kind = kind;
    config.ladder_kbps = {400, 800, 1'500};
    AbrController abr{config};
    Xoshiro256ss rng{5};
    double bitrate = abr.initial_bitrate(rng.uniform(10, 50'000));
    for (int i = 0; i < 1'000; ++i) {
      const auto ladder = abr.ladder();
      EXPECT_NE(std::find(ladder.begin(), ladder.end(), bitrate),
                ladder.end());
      bitrate =
          abr.next_bitrate(rng.uniform(10, 50'000), rng.uniform(0, 30));
    }
  }
}

TEST(DeliveryConditions, ImpactComposition) {
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = 4'000.0;
  cond.rtt_ms = 50.0;
  cond.join_failure_prob = 0.01;
  cond.startup_overhead_ms = 300.0;
  cond.apply_impact(0.5, 2.0, 0.1, 1'000.0);
  cond.apply_impact(0.5, 1.0, 0.05, 0.0);
  EXPECT_DOUBLE_EQ(cond.bandwidth_mean_kbps, 1'000.0);
  EXPECT_DOUBLE_EQ(cond.rtt_ms, 100.0);
  EXPECT_NEAR(cond.join_failure_prob, 0.16, 1e-12);
  EXPECT_DOUBLE_EQ(cond.startup_overhead_ms, 1'300.0);
}

TEST(DeliveryConditions, ClampBoundsEverything) {
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = -5.0;
  cond.rtt_ms = 1e9;
  cond.join_failure_prob = 7.0;
  cond.startup_overhead_ms = -100.0;
  cond.bandwidth_sigma = 99.0;
  cond.clamp();
  EXPECT_GE(cond.bandwidth_mean_kbps, 10.0);
  EXPECT_LE(cond.rtt_ms, 10'000.0);
  EXPECT_LE(cond.join_failure_prob, 1.0);
  EXPECT_GE(cond.startup_overhead_ms, 0.0);
  EXPECT_LE(cond.bandwidth_sigma, 2.0);
}

AbrConfig default_abr() {
  AbrConfig config;
  config.ladder_kbps = {400, 800, 1'500, 2'500};
  return config;
}

TEST(Player, CertainFailureProbabilityFails) {
  DeliveryConditions cond;
  cond.join_failure_prob = 1.0;
  const QualityMetrics q =
      simulate_playback(cond, default_abr(), {}, 300.0, Xoshiro256ss{1});
  EXPECT_TRUE(q.join_failed);
  EXPECT_EQ(q.bitrate_kbps, 0.0F);
  EXPECT_EQ(q.buffering_ratio, 0.0F);
}

TEST(Player, FastPathPlaysCleanlyAtTopRung) {
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = 50'000.0;
  cond.bandwidth_sigma = 0.05;
  cond.rtt_ms = 20.0;
  cond.join_failure_prob = 0.0;
  const QualityMetrics q =
      simulate_playback(cond, default_abr(), {}, 600.0, Xoshiro256ss{2});
  EXPECT_FALSE(q.join_failed);
  EXPECT_LT(q.join_time_ms, 3'000.0F);
  EXPECT_EQ(q.buffering_ratio, 0.0F);
  EXPECT_GT(q.bitrate_kbps, 2'000.0F);  // converges to the 2500 rung
}

TEST(Player, StarvedPathBuffersHeavily) {
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = 200.0;  // below the lowest rung
  cond.bandwidth_sigma = 0.1;
  AbrConfig abr = default_abr();
  PlayerConfig player;
  player.join_timeout_ms = 1e9;  // isolate the buffering behaviour
  const QualityMetrics q =
      simulate_playback(cond, abr, player, 600.0, Xoshiro256ss{3});
  EXPECT_FALSE(q.join_failed);
  EXPECT_GT(q.buffering_ratio, 0.3F);
  EXPECT_LT(q.bitrate_kbps, 700.0F);
}

TEST(Player, StartupStarvationBecomesJoinFailure) {
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = 30.0;  // can never fill the startup buffer
  cond.bandwidth_sigma = 0.05;
  const QualityMetrics q =
      simulate_playback(cond, default_abr(), {}, 300.0, Xoshiro256ss{4});
  EXPECT_TRUE(q.join_failed);
  EXPECT_EQ(q.join_time_ms, PlayerConfig{}.join_timeout_ms);
}

TEST(Player, SingleBitrateSiteBuffersWhereAdaptiveDoesNot) {
  // The paper's Table 3 signature: on a mediocre path, a single-bitrate
  // site buffers while an adaptive site downshifts and plays cleanly.
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = 1'200.0;
  cond.bandwidth_sigma = 0.3;

  AbrConfig fixed;
  fixed.kind = AbrKind::kFixedSingle;
  fixed.ladder_kbps = {1'800};

  PlayerConfig player;
  player.join_timeout_ms = 1e9;

  double fixed_buf = 0.0;
  double adaptive_buf = 0.0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    fixed_buf += simulate_playback(cond, fixed, player, 600.0,
                                   Xoshiro256ss{seed})
                     .buffering_ratio;
    adaptive_buf += simulate_playback(cond, default_abr(), player, 600.0,
                                      Xoshiro256ss{seed})
                        .buffering_ratio;
  }
  EXPECT_GT(fixed_buf, adaptive_buf * 3.0);
}

TEST(Player, JoinTimeGrowsWithRttAndOverhead) {
  DeliveryConditions fast;
  fast.bandwidth_mean_kbps = 10'000.0;
  fast.rtt_ms = 30.0;
  fast.startup_overhead_ms = 300.0;
  DeliveryConditions slow = fast;
  slow.rtt_ms = 500.0;
  slow.startup_overhead_ms = 9'000.0;
  const QualityMetrics fast_q =
      simulate_playback(fast, default_abr(), {}, 300.0, Xoshiro256ss{6});
  const QualityMetrics slow_q =
      simulate_playback(slow, default_abr(), {}, 300.0, Xoshiro256ss{6});
  EXPECT_GT(slow_q.join_time_ms, fast_q.join_time_ms + 9'000.0F);
}

TEST(Player, DeterministicGivenSeed) {
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = 2'000.0;
  const QualityMetrics a =
      simulate_playback(cond, default_abr(), {}, 300.0, Xoshiro256ss{42});
  const QualityMetrics b =
      simulate_playback(cond, default_abr(), {}, 300.0, Xoshiro256ss{42});
  EXPECT_EQ(a, b);
}

TEST(Player, MetricsAlwaysInValidRanges) {
  Xoshiro256ss rng{9};
  for (int trial = 0; trial < 300; ++trial) {
    DeliveryConditions cond;
    cond.bandwidth_mean_kbps = rng.uniform(10.0, 20'000.0);
    cond.bandwidth_sigma = rng.uniform(0.0, 1.0);
    cond.rtt_ms = rng.uniform(1.0, 1'000.0);
    cond.join_failure_prob = rng.uniform(0.0, 0.2);
    cond.startup_overhead_ms = rng.uniform(0.0, 5'000.0);
    const QualityMetrics q = simulate_playback(
        cond, default_abr(), {}, rng.uniform(10.0, 3'600.0),
        rng.derive(trial));
    EXPECT_GE(q.buffering_ratio, 0.0F);
    EXPECT_LT(q.buffering_ratio, 1.0F);
    EXPECT_GE(q.join_time_ms, 0.0F);
    if (!q.join_failed) {
      EXPECT_GE(q.bitrate_kbps, 400.0F);
      EXPECT_LE(q.bitrate_kbps, 2'500.0F);
    }
  }
}

TEST(AbrKindName, Labels) {
  EXPECT_EQ(abr_kind_name(AbrKind::kFixedSingle), "FixedSingle");
  EXPECT_EQ(abr_kind_name(AbrKind::kRateBased), "RateBased");
  EXPECT_EQ(abr_kind_name(AbrKind::kBufferBased), "BufferBased");
}

}  // namespace
}  // namespace vq
