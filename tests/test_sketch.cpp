// Sketch-bounded admission tier (src/baseline/hhh.h): count-min and
// space-saving guarantees, exactness of the admitted sub-lattice, and the
// planted-event recall/precision differential against the exact pipeline
// (the numbers EXPERIMENTS.md records).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "src/baseline/hhh.h"
#include "src/core/columns.h"
#include "src/core/pipeline.h"
#include "src/gen/tracegen.h"
#include "src/util/flat_hash_map.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

/// Deterministic 64-bit key stream (splitmix64) — no RNG state shared with
/// the sketch's own mixing.
struct KeyStream {
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
};

// --- count-min ---------------------------------------------------------------

TEST(SketchCountMin, NeverUnderestimates) {
  // A deliberately tiny sketch so collisions are guaranteed: the estimate
  // may exceed the truth but must never fall below it.
  CountMinSketch cms{64, 3};
  KeyStream keys;
  FlatMap64<std::uint64_t> truth;
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t key = keys.next() % 512;  // force collisions
    const std::uint64_t weight = 1 + key % 5;
    truth[key] += weight;
    cms.add(key, weight);
  }
  truth.for_each([&](std::uint64_t key, std::uint64_t count) {
    EXPECT_GE(cms.estimate(key), count) << "key " << key;
  });
}

TEST(SketchCountMin, ExactWithoutCollisions) {
  CountMinSketch cms{1 << 12, 4};
  for (std::uint64_t key = 1; key <= 8; ++key) cms.add(key, key * 10);
  // With 8 keys in a 4096-wide sketch, collisions across all 4 rows are
  // all but impossible; the min-row estimate is exact here.
  for (std::uint64_t key = 1; key <= 8; ++key) {
    EXPECT_EQ(cms.estimate(key), key * 10);
  }
  cms.clear();
  EXPECT_EQ(cms.estimate(3), 0u);
}

TEST(SketchCountMin, RejectsZeroDimensions) {
  EXPECT_THROW(CountMinSketch(0, 4), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(64, 0), std::invalid_argument);
}

// --- space-saving ------------------------------------------------------------

TEST(SketchSpaceSaving, ExactUnderCapacity) {
  SpaceSaving ss{16};
  for (std::uint64_t key = 0; key < 10; ++key) {
    for (std::uint64_t i = 0; i <= key; ++i) ss.offer(key);
  }
  EXPECT_EQ(ss.size(), 10u);
  EXPECT_EQ(ss.evictions(), 0u);
  const auto entries = ss.entries();
  ASSERT_EQ(entries.size(), 10u);
  for (const SpaceSavingEntry& entry : entries) {
    EXPECT_EQ(entry.count, entry.key + 1);  // exact, no inherited error
    EXPECT_EQ(entry.error, 0u);
  }
  // Sorted by count descending.
  EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end(),
                             [](const auto& a, const auto& b) {
                               return a.count > b.count;
                             }));
}

TEST(SketchSpaceSaving, HeavyHittersSurviveEvictionPressure) {
  // 4 heavy keys (1000 each) in a noise stream of 4000 singletons, with
  // only 64 slots.  The space-saving guarantee: any key whose true count
  // exceeds total/capacity (= 8000/64 = 125) must be present, its count an
  // upper bound and count - error a lower bound on the truth.
  SpaceSaving ss{64};
  KeyStream noise;
  constexpr std::uint64_t kHeavy[] = {11, 22, 33, 44};
  for (int round = 0; round < 1'000; ++round) {
    for (const std::uint64_t key : kHeavy) ss.offer(key);
    for (int i = 0; i < 4; ++i) ss.offer(1'000'000 + noise.next() % 100'000);
  }
  EXPECT_GT(ss.evictions(), 0u);
  const auto entries = ss.entries();
  for (const std::uint64_t key : kHeavy) {
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [key](const SpaceSavingEntry& e) { return e.key == key; });
    ASSERT_NE(it, entries.end()) << "heavy key " << key << " evicted";
    EXPECT_GE(it->count, 1'000u);             // upper bound >= truth
    EXPECT_LE(it->count - it->error, 1'000u);  // lower bound <= truth
  }
}

TEST(SketchSpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving{0}, std::invalid_argument);
}

// --- admission ---------------------------------------------------------------

SessionColumns columns_of(const std::vector<Session>& sessions,
                          std::uint32_t epoch) {
  return SessionColumns::from_sessions(sessions, epoch);
}

TEST(SketchAdmissionFold, UnlimitedBudgetIsTheExactFold) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1, .cdn = 1},
                     test::bad_buffering(), 40);
  test::add_sessions(sessions, 0, Attrs{.site = 2, .cdn = 1},
                     test::good_quality(), 60);
  const SessionColumns columns = columns_of(sessions, 0);
  const ProblemThresholds thresholds;

  SketchAdmission admission{SketchAdmissionParams{.max_cells = 0}};
  const LeafFold bounded = admission.fold(columns, thresholds, 0);
  const LeafFold exact = fold_sessions_columns(columns, thresholds, 0);
  EXPECT_EQ(bounded.root, exact.root);
  EXPECT_EQ(bounded.leaves.size(), exact.leaves.size());
  exact.leaves.for_each([&](std::uint64_t key, const ClusterStats& s) {
    const ClusterStats* got = bounded.leaves.find(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, s);
  });
  // The unlimited path never touches the sketches.
  EXPECT_EQ(admission.report().epochs, 0u);
}

TEST(SketchAdmissionFold, RootIsExactAndAdmittedLeavesCarryExactStats) {
  // 300 distinct one-session leaves plus 3 heavy leaves, with a budget of
  // 8 leaves (max_cells = 8 * 127): the heavy leaves must be admitted with
  // exactly the stats the unbounded fold would hold, and the root must
  // count every session regardless of the cut.
  std::vector<Session> sessions;
  test::add_sessions(sessions, 7, Attrs{.site = 1, .cdn = 1, .asn = 1},
                     test::bad_buffering(), 200);
  test::add_sessions(sessions, 7, Attrs{.site = 2, .cdn = 1, .asn = 2},
                     test::good_quality(), 150);
  test::add_sessions(sessions, 7, Attrs{.site = 3, .cdn = 2, .asn = 3},
                     test::bad_bitrate(), 100);
  for (std::uint16_t i = 0; i < 300; ++i) {
    test::add_sessions(sessions, 7,
                       Attrs{.site = static_cast<std::uint16_t>(4 + i % 50),
                             .cdn = static_cast<std::uint16_t>(i % 3),
                             .asn = static_cast<std::uint16_t>(100 + i)},
                       test::good_quality(), 1);
  }
  const SessionColumns columns = columns_of(sessions, 7);
  const ProblemThresholds thresholds;
  const LeafFold exact = fold_sessions_columns(columns, thresholds, 7);

  SketchAdmission admission{
      SketchAdmissionParams{.max_cells = 8 * std::size_t{kFullMask}}};
  EXPECT_EQ(admission.leaf_capacity(), 8u);
  const LeafFold bounded = admission.fold(columns, thresholds, 7);

  EXPECT_EQ(bounded.epoch, 7u);
  EXPECT_EQ(bounded.root, exact.root);  // exact over ALL sessions
  EXPECT_LE(bounded.leaves.size(), 8u);
  // Every admitted leaf is exact (pass 2 refolds from the raw stream).
  bounded.leaves.for_each([&](std::uint64_t key, const ClusterStats& s) {
    const ClusterStats* truth = exact.leaves.find(key);
    ASSERT_NE(truth, nullptr);
    EXPECT_EQ(*truth, s);
  });
  // The three heavy leaves beat every singleton; they must all be present.
  for (const Attrs& heavy :
       {Attrs{.site = 1, .cdn = 1, .asn = 1}, Attrs{.site = 2, .cdn = 1,
                                                    .asn = 2},
        Attrs{.site = 3, .cdn = 2, .asn = 3}}) {
    const std::uint64_t key = ClusterKey::pack(kFullMask, heavy.vec()).raw();
    EXPECT_NE(bounded.leaves.find(key), nullptr);
  }
  const SketchAdmissionReport& report = admission.report();
  EXPECT_EQ(report.epochs, 1u);
  EXPECT_EQ(report.sessions_seen, sessions.size());
  EXPECT_GE(report.sessions_admitted, 450u);  // at least the heavy mass
  EXPECT_GT(report.evictions, 0u);
}

// --- planted-event recall/precision differential -----------------------------

/// In-memory EpochColumnsSource over a SessionTable (streaming test double).
class TableColumnsSource final : public EpochColumnsSource {
 public:
  explicit TableColumnsSource(const SessionTable& table) : table_(table) {}
  [[nodiscard]] std::uint32_t num_epochs() const override {
    return table_.num_epochs();
  }
  bool read_epoch(std::uint32_t e, SessionColumns& out) override {
    out.clear();
    for (const Session& s : table_.epoch(e)) out.push_back(s);
    return false;
  }

 private:
  const SessionTable& table_;
};

SessionTable planted_trace(std::uint32_t num_epochs) {
  WorldConfig world_config;
  world_config.num_sites = 10;
  world_config.num_cdns = 3;
  world_config.num_asns = 20;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = num_epochs;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = num_epochs;
  trace_config.sessions_per_epoch = 8000;
  return generate_trace(world, events, trace_config);
}

TEST(SketchAdmissionDifferential, PlantedEventRecallAndPrecisionVsExact) {
  const SessionTable trace = planted_trace(12);
  PipelineConfig config;
  config.cluster_params.min_sessions = 60;

  TableColumnsSource exact_source{trace};
  const PipelineResult exact = run_pipeline_streaming(exact_source, config);

  // Budget: 4000 leaves/epoch against ~3.5-4.5k distinct leaves — a mild
  // cut (~7% of sessions dropped at peak epochs).  The full budget sweep
  // (recall 0.08 at 400 leaves up to 1.00 at 6000) is in EXPERIMENTS.md;
  // leaf-level admission degrades sharply once aggregate clusters start
  // losing the light leaves beneath them, so budgets well under the
  // distinct-leaf count trade recall for memory.
  SketchAdmission admission{
      SketchAdmissionParams{.max_cells = 4000 * std::size_t{kFullMask}}};
  PipelineConfig bounded_config = config;
  bounded_config.fold_provider = [&](const SessionColumns& columns,
                                     const ProblemThresholds& thresholds,
                                     std::uint32_t epoch) {
    return admission.fold(columns, thresholds, epoch);
  };
  TableColumnsSource bounded_source{trace};
  const PipelineResult bounded =
      run_pipeline_streaming(bounded_source, bounded_config);

  std::uint64_t exact_total = 0;
  std::uint64_t bounded_total = 0;
  std::uint64_t hits = 0;
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < trace.num_epochs(); ++e) {
      std::set<std::uint64_t> truth;
      for (const auto& rec : exact.at(m, e).analysis.criticals) {
        truth.insert(rec.key.raw());
      }
      std::set<std::uint64_t> found;
      for (const auto& rec : bounded.at(m, e).analysis.criticals) {
        found.insert(rec.key.raw());
      }
      exact_total += truth.size();
      bounded_total += found.size();
      for (const std::uint64_t key : found) hits += truth.count(key);
      // The cut never changes the global counters the thresholds hang off.
      EXPECT_EQ(bounded.at(m, e).analysis.sessions,
                exact.at(m, e).analysis.sessions);
      EXPECT_EQ(bounded.at(m, e).analysis.problem_sessions,
                exact.at(m, e).analysis.problem_sessions);
    }
  }
  ASSERT_GT(exact_total, 0u);
  ASSERT_GT(bounded_total, 0u);
  const double recall =
      static_cast<double>(hits) / static_cast<double>(exact_total);
  const double precision =
      static_cast<double>(hits) / static_cast<double>(bounded_total);
  // Planted events are heavy by construction, so the sketch tier keeps the
  // bulk of them; the exact figures for this trace live in EXPERIMENTS.md.
  std::printf("[sketch-differential] critical-cluster recall=%.3f "
              "precision=%.3f (exact=%ju bounded=%ju hits=%ju)\n",
              recall, precision, static_cast<std::uintmax_t>(exact_total),
              static_cast<std::uintmax_t>(bounded_total),
              static_cast<std::uintmax_t>(hits));
  EXPECT_GE(recall, 0.75);
  EXPECT_GE(precision, 0.80);
}

TEST(SketchAdmissionDifferential, BoundedFoldComposesWithIncrementalLattice) {
  // The sketch tier feeds the *incremental* lattice the same way it feeds
  // the from-scratch path: with an identical fold the two must stay
  // bit-identical even though the fold itself is lossy.
  const SessionTable trace = planted_trace(6);
  SketchAdmission admission_a{
      SketchAdmissionParams{.max_cells = 200 * std::size_t{kFullMask}}};
  SketchAdmission admission_b{
      SketchAdmissionParams{.max_cells = 200 * std::size_t{kFullMask}}};

  PipelineConfig config;
  config.cluster_params.min_sessions = 60;
  config.fold_provider = [&](const SessionColumns& columns,
                             const ProblemThresholds& thresholds,
                             std::uint32_t epoch) {
    return admission_a.fold(columns, thresholds, epoch);
  };
  TableColumnsSource source_a{trace};
  const PipelineResult rebuild = run_pipeline_streaming(source_a, config);

  PipelineConfig incremental_config = config;
  incremental_config.incremental = true;
  incremental_config.fold_provider = [&](const SessionColumns& columns,
                                         const ProblemThresholds& thresholds,
                                         std::uint32_t epoch) {
    return admission_b.fold(columns, thresholds, epoch);
  };
  TableColumnsSource source_b{trace};
  const PipelineResult incremental =
      run_pipeline_streaming(source_b, incremental_config);

  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < trace.num_epochs(); ++e) {
      const auto& want = rebuild.at(m, e).analysis;
      const auto& got = incremental.at(m, e).analysis;
      EXPECT_EQ(want.problem_cluster_keys, got.problem_cluster_keys);
      EXPECT_EQ(want.attributed_mass, got.attributed_mass);
      ASSERT_EQ(want.criticals.size(), got.criticals.size());
      for (std::size_t i = 0; i < want.criticals.size(); ++i) {
        EXPECT_EQ(want.criticals[i].key.raw(), got.criticals[i].key.raw());
        EXPECT_EQ(want.criticals[i].attributed, got.criticals[i].attributed);
      }
    }
  }
}

}  // namespace
}  // namespace vq
