#include "src/util/args.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vq {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full = {"vidqual"};
  full.insert(full.end(), argv.begin(), argv.end());
  return ArgParser{static_cast<int>(full.size()), full.data()};
}

TEST(ArgParser, Positionals) {
  const ArgParser args = parse({"analyze", "extra"});
  EXPECT_EQ(args.positional_count(), 2u);
  EXPECT_EQ(args.positional(0), "analyze");
  EXPECT_EQ(args.positional(1), "extra");
  EXPECT_EQ(args.positional(2), "");
}

TEST(ArgParser, SpaceSeparatedOption) {
  const ArgParser args = parse({"generate", "--out", "trace.csv"});
  ASSERT_TRUE(args.option("out").has_value());
  EXPECT_EQ(*args.option("out"), "trace.csv");
  EXPECT_TRUE(args.flag("out"));
}

TEST(ArgParser, EqualsSeparatedOption) {
  const ArgParser args = parse({"--epochs=48", "--seed=7"});
  EXPECT_EQ(args.option_u64("epochs", 0), 48u);
  EXPECT_EQ(args.option_u64("seed", 0), 7u);
}

TEST(ArgParser, BareFlagBeforeAnotherOption) {
  const ArgParser args = parse({"--no-events", "--out", "x.csv"});
  EXPECT_TRUE(args.flag("no-events"));
  EXPECT_FALSE(args.option("no-events").has_value());
  EXPECT_EQ(*args.option("out"), "x.csv");
}

TEST(ArgParser, TrailingBareFlag) {
  const ArgParser args = parse({"--verbose"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_FALSE(args.option("verbose").has_value());
}

TEST(ArgParser, MissingOptionFallsBack) {
  const ArgParser args = parse({"analyze"});
  EXPECT_FALSE(args.option("in").has_value());
  EXPECT_FALSE(args.flag("in"));
  EXPECT_EQ(args.option_u64("epochs", 336), 336u);
  EXPECT_DOUBLE_EQ(args.option_double("top-frac", 0.01), 0.01);
}

TEST(ArgParser, NumericParsing) {
  const ArgParser args = parse({"--n", "123", "--f", "0.25"});
  EXPECT_EQ(args.option_u64("n", 0), 123u);
  EXPECT_DOUBLE_EQ(args.option_double("f", 0.0), 0.25);
}

TEST(ArgParser, MalformedNumbersThrow) {
  const ArgParser args = parse({"--n", "12x", "--f", "zero"});
  EXPECT_THROW((void)args.option_u64("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.option_double("f", 0.0), std::invalid_argument);
}

TEST(ArgParser, UnknownOptionDetection) {
  const ArgParser args = parse({"--in", "x", "--bogus", "--top", "3"});
  const auto unknown = args.unknown_options({"in", "top"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bogus");
  EXPECT_TRUE(args.unknown_options({"in", "top", "bogus"}).empty());
}

TEST(ArgParser, DoubleDashAloneIsPositional) {
  // "--" has length 2 (< 3) so it is not treated as an option.
  const ArgParser args = parse({"--", "file"});
  EXPECT_EQ(args.positional_count(), 2u);
  EXPECT_EQ(args.positional(0), "--");
}

}  // namespace
}  // namespace vq
