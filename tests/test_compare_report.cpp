// A/B trace comparison and the report generator.

#include <gtest/gtest.h>

#include "src/core/compare.h"
#include "src/core/report.h"
#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

PipelineConfig small_config() {
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  return config;
}

/// Bad CDN 1 (strength scalable) + background.
std::vector<Session> epoch_with_cdn(std::uint32_t epoch,
                                    std::size_t bad_sessions) {
  std::vector<Session> sessions;
  for (std::uint16_t asn = 1; asn <= 4; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       test::bad_buffering(), bad_sessions / 4);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       test::good_quality(), 25 - bad_sessions / 4);
  }
  for (std::uint16_t asn = 10; asn < 28; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::bad_buffering(), 2);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::good_quality(), 48);
  }
  return sessions;
}

PipelineResult result_with_cdn(std::size_t bad_sessions) {
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 3; ++e) {
    auto epoch = epoch_with_cdn(e, bad_sessions);
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  return run_pipeline(SessionTable{std::move(sessions)}, small_config());
}

TEST(Compare, IdenticalResultsShowNoChange) {
  const PipelineResult a = result_with_cdn(60);
  const TraceComparison comparison = compare_results(a, a);
  const MetricComparison& mc = comparison.at(Metric::kBufRatio);
  EXPECT_DOUBLE_EQ(mc.relative_change(), 0.0);
  for (const ClusterDelta& delta : mc.clusters) {
    EXPECT_EQ(delta.fate, ClusterFate::kPersisting);
    EXPECT_DOUBLE_EQ(delta.mass_before, delta.mass_after);
  }
}

TEST(Compare, FixedClusterIsClassified) {
  const PipelineResult before = result_with_cdn(60);
  const PipelineResult after = result_with_cdn(0);
  const TraceComparison comparison = compare_results(before, after);
  const MetricComparison& mc = comparison.at(Metric::kBufRatio);
  EXPECT_LT(mc.relative_change(), -0.3);  // big improvement

  bool cdn_fixed = false;
  for (const ClusterDelta& delta : mc.clusters) {
    if (delta.key.has(AttrDim::kCdn) &&
        delta.key.value(AttrDim::kCdn) == 1 && delta.key.arity() == 1) {
      EXPECT_EQ(delta.fate, ClusterFate::kFixed);
      EXPECT_EQ(delta.mass_after, 0.0);
      cdn_fixed = true;
    }
  }
  EXPECT_TRUE(cdn_fixed);
}

TEST(Compare, NewAndRegressedClusters) {
  const PipelineResult before = result_with_cdn(0);
  const PipelineResult after = result_with_cdn(60);
  const TraceComparison comparison = compare_results(before, after);
  const MetricComparison& mc = comparison.at(Metric::kBufRatio);
  EXPECT_GT(mc.relative_change(), 0.3);
  bool cdn_new = false;
  for (const ClusterDelta& delta : mc.clusters) {
    if (delta.key.has(AttrDim::kCdn) &&
        delta.key.value(AttrDim::kCdn) == 1 && delta.key.arity() == 1) {
      EXPECT_EQ(delta.fate, ClusterFate::kNew);
      cdn_new = true;
    }
  }
  EXPECT_TRUE(cdn_new);
}

TEST(Compare, ImprovedVsPersistingThresholds) {
  const PipelineResult before = result_with_cdn(60);
  const PipelineResult mild = result_with_cdn(40);  // ~33% less mass
  const TraceComparison comparison = compare_results(before, mild);
  for (const ClusterDelta& delta :
       comparison.at(Metric::kBufRatio).clusters) {
    if (delta.key.has(AttrDim::kCdn) &&
        delta.key.value(AttrDim::kCdn) == 1 && delta.key.arity() == 1) {
      EXPECT_EQ(delta.fate, ClusterFate::kImproved);
    }
  }
}

TEST(Compare, SortedByAbsoluteMassChange) {
  const PipelineResult before = result_with_cdn(60);
  const PipelineResult after = result_with_cdn(0);
  const auto& clusters =
      compare_results(before, after).at(Metric::kBufRatio).clusters;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    EXPECT_GE(std::abs(clusters[i - 1].mass_after -
                       clusters[i - 1].mass_before),
              std::abs(clusters[i].mass_after - clusters[i].mass_before));
  }
}

TEST(Compare, FateNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int f = 0; f <= static_cast<int>(ClusterFate::kNew); ++f) {
    names.insert(cluster_fate_name(static_cast<ClusterFate>(f)));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(Report, ContainsEverySection) {
  WorldConfig world_config;
  world_config.num_sites = 30;
  world_config.num_cdns = 6;
  world_config.num_asns = 80;
  const World world = World::build(world_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 12;
  trace_config.sessions_per_epoch = 1'200;
  const SessionTable trace =
      generate_trace(world, EventSchedule::none(12), trace_config);
  const PipelineResult result = run_pipeline(trace, small_config());

  ReportOptions options;
  options.annotate = [](const ClusterKey&) { return std::string{"hint"}; };
  const std::string report =
      render_report(trace, result, world.schema(), options);

  for (const char* section :
       {"video quality report", "problem ratios", "buffering ratio "
        "distribution", "top recurrent critical clusters", "persistence",
        "anomalous hours", "what fixing the top clusters would buy"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
  // Annotation hook applied.
  EXPECT_NE(report.find("<- hint"), std::string::npos);
  // All four metrics mentioned.
  for (const Metric m : kAllMetrics) {
    EXPECT_NE(report.find(std::string(metric_name(m))), std::string::npos);
  }
}

TEST(Report, EmptyTraceDoesNotCrash) {
  const SessionTable trace;
  const PipelineResult result = run_pipeline(trace, {});
  AttributeSchema schema;
  const std::string report = render_report(trace, result, schema);
  EXPECT_NE(report.find("sessions: 0"), std::string::npos);
}

}  // namespace
}  // namespace vq
