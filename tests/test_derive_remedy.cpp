// Derived (hidden) attributes and remedy re-simulation.

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/gen/derive.h"
#include "src/gen/tracegen.h"

namespace vq {
namespace {

World small_world() {
  WorldConfig config;
  config.num_sites = 40;
  config.num_cdns = 8;
  config.num_asns = 120;
  return World::build(config);
}

TraceConfig small_trace(std::uint32_t epochs = 3) {
  TraceConfig config;
  config.num_epochs = epochs;
  config.sessions_per_epoch = 1'500;
  return config;
}

TEST(Derive, CoarsensAsnToRegion) {
  const World world = small_world();
  const TraceConfig config = small_trace();
  const SessionTable trace =
      generate_trace(world, EventSchedule::none(config.num_epochs), config);
  const SessionTable coarse = coarsen_asn_to_region(trace, world);

  ASSERT_EQ(coarse.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Session& fine = trace.sessions()[i];
    const Session& derived = coarse.sessions()[i];
    EXPECT_EQ(derived.attrs[AttrDim::kAsn],
              static_cast<std::uint16_t>(
                  world.asns()[fine.attrs[AttrDim::kAsn]].region));
    // Everything else untouched.
    EXPECT_EQ(derived.attrs[AttrDim::kSite], fine.attrs[AttrDim::kSite]);
    EXPECT_EQ(derived.attrs[AttrDim::kCdn], fine.attrs[AttrDim::kCdn]);
    EXPECT_EQ(derived.quality, fine.quality);
  }
}

TEST(Derive, RegionSchemaNamesRegions) {
  const World world = small_world();
  const AttributeSchema schema = region_schema(world);
  EXPECT_EQ(schema.cardinality(AttrDim::kAsn),
            static_cast<std::size_t>(kNumRegions));
  EXPECT_EQ(schema.name(AttrDim::kAsn, 0), "US");
  EXPECT_EQ(schema.name(AttrDim::kAsn, 2), "China");
  // Other dims mirror the world's schema.
  EXPECT_EQ(schema.cardinality(AttrDim::kSite),
            world.schema().cardinality(AttrDim::kSite));
  EXPECT_EQ(schema.name(AttrDim::kSite, 0),
            world.schema().name(AttrDim::kSite, 0));
}

TEST(Derive, RegionLatticeAggregatesFragmentedAsnMass) {
  // Region-level clusters must be at least as large as any single ASN
  // cluster they contain — the point of the hidden-attribute analysis.
  const World world = small_world();
  const TraceConfig config = small_trace();
  const SessionTable trace =
      generate_trace(world, EventSchedule::none(config.num_epochs), config);
  const SessionTable coarse = coarsen_asn_to_region(trace, world);

  const auto fine_table = aggregate_epoch(trace.epoch(0), {}, {}, 0);
  const auto coarse_table = aggregate_epoch(coarse.epoch(0), {}, {}, 0);

  for (std::uint16_t asn = 0; asn < world.asns().size(); ++asn) {
    AttrVec fine_attrs;
    fine_attrs[AttrDim::kAsn] = asn;
    const auto fine_stats = fine_table.stats(
        ClusterKey::pack(dim_bit(AttrDim::kAsn), fine_attrs));
    if (fine_stats.sessions == 0) continue;
    AttrVec coarse_attrs;
    coarse_attrs[AttrDim::kAsn] =
        static_cast<std::uint16_t>(world.asns()[asn].region);
    const auto region_stats = coarse_table.stats(
        ClusterKey::pack(dim_bit(AttrDim::kAsn), coarse_attrs));
    EXPECT_GE(region_stats.sessions, fine_stats.sessions);
  }
}

TEST(Remedy, EmptyRemedyListReproducesTraceExactly) {
  const World world = small_world();
  const TraceConfig config = small_trace();
  EventScheduleConfig event_config;
  event_config.num_epochs = config.num_epochs;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  const SessionTable a = generate_trace(world, events, config);
  const SessionTable b = generate_trace(world, events, config, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sessions()[i].attrs, b.sessions()[i].attrs);
    EXPECT_EQ(a.sessions()[i].quality, b.sessions()[i].quality);
  }
}

TEST(Remedy, UnmatchedSessionsAreBitIdentical) {
  const World world = small_world();
  const TraceConfig config = small_trace();
  const EventSchedule events = EventSchedule::none(config.num_epochs);

  // Remedy scoped to one site.
  AttrVec attrs;
  attrs[AttrDim::kSite] = 3;
  const Remedy remedy{
      .scope = ClusterKey::pack(dim_bit(AttrDim::kSite), attrs),
      .action = RemedyAction::kSwitchToBestCdn};
  const SessionTable base = generate_trace(world, events, config);
  const SessionTable fixed =
      generate_trace(world, events, config, {&remedy, 1});
  ASSERT_EQ(base.size(), fixed.size());
  std::size_t matched = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const Session& a = base.sessions()[i];
    const Session& b = fixed.sessions()[i];
    if (a.attrs[AttrDim::kSite] == 3) {
      ++matched;
      continue;  // remedied path may differ
    }
    EXPECT_EQ(a.attrs, b.attrs);
    EXPECT_EQ(a.quality, b.quality);
  }
  EXPECT_GT(matched, 0u);
}

TEST(Remedy, SwitchToBestCdnReassignsMatchingSessions) {
  const World world = small_world();
  const TraceConfig config = small_trace();
  const EventSchedule events = EventSchedule::none(config.num_epochs);

  // Find an in-house CDN and remedy its traffic.
  std::uint16_t inhouse = 0;
  for (const CdnModel& cdn : world.cdns()) {
    if (cdn.in_house) inhouse = cdn.id;
  }
  AttrVec attrs;
  attrs[AttrDim::kCdn] = inhouse;
  const Remedy remedy{
      .scope = ClusterKey::pack(dim_bit(AttrDim::kCdn), attrs),
      .action = RemedyAction::kSwitchToBestCdn};
  const SessionTable fixed =
      generate_trace(world, events, config, {&remedy, 1});
  for (const Session& s : fixed.sessions()) {
    EXPECT_NE(s.attrs[AttrDim::kCdn], inhouse);
    EXPECT_FALSE(world.cdns()[s.attrs[AttrDim::kCdn]].in_house &&
                 s.attrs[AttrDim::kCdn] == inhouse);
  }
}

TEST(Remedy, LadderRemedyReducesBufferingForSingleBitrateSite) {
  const World world = small_world();
  // Find a single-bitrate site.
  std::optional<std::uint16_t> site_id;
  for (const SiteModel& site : world.sites()) {
    if (site.single_bitrate) {
      site_id = site.id;
      break;
    }
  }
  ASSERT_TRUE(site_id.has_value());

  TraceConfig config = small_trace(4);
  config.sessions_per_epoch = 4'000;
  const EventSchedule events = EventSchedule::none(config.num_epochs);
  AttrVec attrs;
  attrs[AttrDim::kSite] = *site_id;
  const Remedy remedy{
      .scope = ClusterKey::pack(dim_bit(AttrDim::kSite), attrs),
      .action = RemedyAction::kAddBitrateLadder};

  const SessionTable base = generate_trace(world, events, config);
  const SessionTable fixed =
      generate_trace(world, events, config, {&remedy, 1});

  const auto site_buffering = [&](const SessionTable& t) {
    double total = 0.0;
    std::size_t n = 0;
    for (const Session& s : t.sessions()) {
      if (s.attrs[AttrDim::kSite] != *site_id || s.quality.join_failed) {
        continue;
      }
      total += s.quality.buffering_ratio;
      ++n;
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
  };
  EXPECT_LT(site_buffering(fixed), site_buffering(base) * 0.8);
}

TEST(Remedy, SuppressEventsNeutralisesPlantedOutage) {
  const World world = small_world();
  TraceConfig config = small_trace(2);
  config.sessions_per_epoch = 4'000;

  AttrVec attrs;
  attrs[AttrDim::kCdn] = 1;
  ProblemEvent outage;
  outage.scope = ClusterKey::pack(dim_bit(AttrDim::kCdn), attrs);
  outage.kind = EventKind::kFailureSpike;
  outage.impact.fail_prob_add = 0.5;
  outage.start_epoch = 0;
  outage.duration_epochs = 2;
  const EventSchedule events = EventSchedule::from_events({outage}, 2);

  const Remedy remedy{.scope = outage.scope,
                      .action = RemedyAction::kSuppressEvents};
  const SessionTable stormy = generate_trace(world, events, config);
  const SessionTable calm = generate_trace(world, EventSchedule::none(2),
                                           config);
  const SessionTable remedied =
      generate_trace(world, events, config, {&remedy, 1});

  const auto failures = [](const SessionTable& t) {
    std::size_t n = 0;
    for (const Session& s : t.sessions()) n += s.quality.join_failed ? 1 : 0;
    return n;
  };
  // The outage adds failures on top of the world's chronic baseline...
  EXPECT_GT(failures(stormy), failures(calm) * 6 / 5);
  // ...and repairing the root cause restores the baseline exactly (same
  // random streams everywhere).
  EXPECT_EQ(failures(remedied), failures(calm));
}

}  // namespace
}  // namespace vq
