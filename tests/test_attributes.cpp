#include "src/core/attributes.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

TEST(ClusterKey, RootHasEmptyMaskAndZeroRaw) {
  const ClusterKey root = ClusterKey::root();
  EXPECT_EQ(root.mask(), 0);
  EXPECT_EQ(root.arity(), 0);
  EXPECT_EQ(root.raw(), 0u);
}

TEST(ClusterKey, PackRoundTripsEveryDimension) {
  const AttrVec attrs =
      Attrs{.site = 378, .cdn = 18, .asn = 14999, .conn = 6, .player = 3,
            .browser = 4, .vod = 1}
          .vec();
  const ClusterKey key = ClusterKey::pack(kFullMask, attrs);
  EXPECT_EQ(key.mask(), kFullMask);
  EXPECT_EQ(key.arity(), kNumDims);
  EXPECT_EQ(key.value(AttrDim::kSite), 378);
  EXPECT_EQ(key.value(AttrDim::kCdn), 18);
  EXPECT_EQ(key.value(AttrDim::kAsn), 14999);
  EXPECT_EQ(key.value(AttrDim::kConnType), 6);
  EXPECT_EQ(key.value(AttrDim::kPlayer), 3);
  EXPECT_EQ(key.value(AttrDim::kBrowser), 4);
  EXPECT_EQ(key.value(AttrDim::kVodLive), 1);
}

TEST(ClusterKey, PackIgnoresUnselectedDimensions) {
  const AttrVec a = Attrs{.site = 5, .cdn = 7, .asn = 100}.vec();
  const AttrVec b = Attrs{.site = 5, .cdn = 3, .asn = 999}.vec();
  const auto mask = dim_bit(AttrDim::kSite);
  EXPECT_EQ(ClusterKey::pack(mask, a), ClusterKey::pack(mask, b));
}

TEST(ClusterKey, DistinctMasksGiveDistinctKeys) {
  const AttrVec attrs = Attrs{.site = 1, .cdn = 1, .asn = 1, .conn = 1,
                              .player = 1, .browser = 1, .vod = 1}
                            .vec();
  std::set<std::uint64_t> raws;
  for (unsigned mask = 0; mask <= kFullMask; ++mask) {
    raws.insert(
        ClusterKey::pack(static_cast<std::uint8_t>(mask), attrs).raw());
  }
  EXPECT_EQ(raws.size(), 128u);
}

TEST(ClusterKey, ValueOverflowThrows) {
  AttrVec attrs;
  attrs[AttrDim::kCdn] = 64;  // field width is 6 bits -> max 63
  EXPECT_THROW(ClusterKey::pack(dim_bit(AttrDim::kCdn), attrs),
               std::out_of_range);
}

TEST(ClusterKey, MaskOverflowThrows) {
  AttrVec attrs;
  EXPECT_THROW(ClusterKey::pack(0xFF, attrs), std::out_of_range);
}

TEST(ClusterKey, TopBitNeverSet) {
  AttrVec attrs;
  for (int d = 0; d < kNumDims; ++d) {
    attrs.v[d] = dim_capacity(static_cast<AttrDim>(d));
  }
  const ClusterKey key = ClusterKey::pack(kFullMask, attrs);
  EXPECT_EQ(key.raw() >> 63, 0u);
  EXPECT_NE(key.raw(), ~std::uint64_t{0});  // never the hash-map sentinel
}

TEST(ClusterKey, ProjectKeepsSelectedValues) {
  const AttrVec attrs = Attrs{.site = 9, .cdn = 4, .asn = 77}.vec();
  const ClusterKey leaf = ClusterKey::pack(kFullMask, attrs);
  const auto mask =
      static_cast<std::uint8_t>(dim_bit(AttrDim::kCdn) |
                                dim_bit(AttrDim::kAsn));
  const ClusterKey projected = leaf.project(mask);
  EXPECT_EQ(projected.mask(), mask);
  EXPECT_EQ(projected.value(AttrDim::kCdn), 4);
  EXPECT_EQ(projected.value(AttrDim::kAsn), 77);
  EXPECT_EQ(projected, ClusterKey::pack(mask, attrs));
}

TEST(ClusterKey, ProjectToEmptyMaskIsRoot) {
  const ClusterKey leaf =
      ClusterKey::pack(kFullMask, Attrs{.site = 3}.vec());
  EXPECT_EQ(leaf.project(0), ClusterKey::root());
}

TEST(ClusterKey, GeneralizesMatchingDescendant) {
  const AttrVec attrs = Attrs{.site = 2, .cdn = 5, .asn = 10}.vec();
  const ClusterKey parent =
      ClusterKey::pack(dim_bit(AttrDim::kCdn), attrs);
  const ClusterKey child = ClusterKey::pack(
      dim_bit(AttrDim::kCdn) | dim_bit(AttrDim::kAsn), attrs);
  EXPECT_TRUE(parent.generalizes(child));
  EXPECT_FALSE(child.generalizes(parent));
  EXPECT_TRUE(parent.generalizes(parent));
  EXPECT_TRUE(ClusterKey::root().generalizes(child));
}

TEST(ClusterKey, GeneralizesRejectsValueMismatch) {
  const ClusterKey parent =
      ClusterKey::pack(dim_bit(AttrDim::kCdn), Attrs{.cdn = 5}.vec());
  const ClusterKey other = ClusterKey::pack(
      dim_bit(AttrDim::kCdn) | dim_bit(AttrDim::kAsn),
      Attrs{.cdn = 6, .asn = 10}.vec());
  EXPECT_FALSE(parent.generalizes(other));
}

TEST(AttributeSchema, InternAssignsDenseIdsAndNames) {
  AttributeSchema schema;
  EXPECT_EQ(schema.intern(AttrDim::kCdn, "akamai-like"), 0);
  EXPECT_EQ(schema.intern(AttrDim::kCdn, "limelight-like"), 1);
  EXPECT_EQ(schema.intern(AttrDim::kCdn, "akamai-like"), 0);  // idempotent
  EXPECT_EQ(schema.name(AttrDim::kCdn, 1), "limelight-like");
  EXPECT_EQ(schema.cardinality(AttrDim::kCdn), 2u);
  EXPECT_EQ(schema.cardinality(AttrDim::kSite), 0u);
}

TEST(AttributeSchema, DescribeRendersNamesAndWildcards) {
  AttributeSchema schema;
  (void)schema.intern(AttrDim::kCdn, "cdn-A");
  (void)schema.intern(AttrDim::kAsn, "AS100");
  const ClusterKey key = ClusterKey::pack(
      dim_bit(AttrDim::kCdn) | dim_bit(AttrDim::kAsn),
      Attrs{.cdn = 0, .asn = 0}.vec());
  EXPECT_EQ(schema.describe(key), "[Cdn=cdn-A, Asn=AS100]");
  EXPECT_EQ(schema.describe(ClusterKey::root()), "[*]");
}

TEST(AttributeSchema, DescribeUnknownIdFallsBackToNumber) {
  AttributeSchema schema;
  const ClusterKey key =
      ClusterKey::pack(dim_bit(AttrDim::kSite), Attrs{.site = 42}.vec());
  EXPECT_EQ(schema.describe(key), "[Site=#42]");
}

TEST(DimNames, AllDistinct) {
  std::set<std::string_view> names;
  for (int d = 0; d < kNumDims; ++d) {
    names.insert(dim_name(static_cast<AttrDim>(d)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumDims));
}

}  // namespace
}  // namespace vq
