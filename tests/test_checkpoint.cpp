// Checkpoint/restore for StreamingDetector: differential resume (kill at any
// epoch boundary, reload, and the event stream must be byte-identical to the
// uninterrupted run), corruption rejection, exception safety of a failed
// load, and the atomic temp-then-rename file save.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/monitor.h"
#include "src/util/fsync.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

MonitorConfig small_monitor() {
  MonitorConfig config;
  config.cluster_params.min_sessions = 50;
  config.escalate_after = 1;
  return config;
}

std::vector<Session> monitored_epoch(std::uint32_t epoch, bool cdn_bad) {
  std::vector<Session> sessions;
  for (std::uint16_t asn = 1; asn <= 4; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       cdn_bad ? test::bad_buffering() : test::good_quality(),
                       15);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       test::good_quality(), 10);
  }
  for (std::uint16_t asn = 10; asn < 28; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::bad_buffering(), 2);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::good_quality(), 48);
  }
  return sessions;
}

/// Renders every field of an event so "identical event sequence" is a string
/// equality, with hexfloat keeping the attributed mass bit-exact.
std::string fmt(const std::vector<IncidentEvent>& events) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const IncidentEvent& e : events) {
    out << incident_update_name(e.update) << " epoch=" << e.epoch
        << " metric=" << static_cast<int>(e.incident.metric)
        << " key=" << e.incident.key.raw()
        << " first=" << e.incident.first_epoch
        << " streak=" << e.incident.streak
        << " escalated=" << e.incident.escalated
        << " attributed=" << e.incident.attributed
        << " sessions=" << e.incident.stats.sessions;
    for (int k = 0; k < kNumMetrics; ++k) {
      out << " p" << k << "=" << e.incident.stats.problems[k];
    }
    out << "\n";
  }
  return out.str();
}

// New incidents, escalations, clears, a gap-free re-open, and a quiet tail.
constexpr bool kScript[] = {true, true, false, true,
                            true, false, false, true};
constexpr std::uint32_t kEpochs = 8;

TEST(Checkpoint, ResumeReproducesIdenticalEventSequence) {
  const MonitorConfig config = small_monitor();

  StreamingDetector uninterrupted{config};
  std::string baseline;
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    baseline += fmt(uninterrupted.ingest(monitored_epoch(e, kScript[e]), e));
  }

  for (std::uint32_t cut = 1; cut < kEpochs; ++cut) {
    StreamingDetector first{config};
    std::string replay;
    for (std::uint32_t e = 0; e < cut; ++e) {
      replay += fmt(first.ingest(monitored_epoch(e, kScript[e]), e));
    }
    std::stringstream checkpoint{std::ios::in | std::ios::out |
                                 std::ios::binary};
    first.save_checkpoint(checkpoint);

    StreamingDetector resumed{config};
    resumed.load_checkpoint(checkpoint);
    EXPECT_TRUE(resumed.has_ingested());
    EXPECT_EQ(resumed.last_epoch(), cut - 1);
    for (std::uint32_t e = cut; e < kEpochs; ++e) {
      replay += fmt(resumed.ingest(monitored_epoch(e, kScript[e]), e));
    }
    EXPECT_EQ(replay, baseline) << "killed at epoch boundary " << cut;
    EXPECT_EQ(resumed.total_opened(Metric::kBufRatio),
              uninterrupted.total_opened(Metric::kBufRatio));
  }
}

TEST(Checkpoint, RoundTripsCountersAndIncidentFields) {
  MonitorConfig config = small_monitor();
  config.order_policy = EpochOrderPolicy::kSkipStale;
  StreamingDetector detector{config};
  (void)detector.ingest(monitored_epoch(0, true), 0);
  (void)detector.ingest(monitored_epoch(0, true), 0);  // stale, dropped
  // A degraded quiet epoch: the open incident survives, clear suppressed.
  (void)detector.ingest(monitored_epoch(1, false), 1, {.degraded = true});

  std::stringstream checkpoint{std::ios::in | std::ios::out |
                               std::ios::binary};
  detector.save_checkpoint(checkpoint);
  StreamingDetector restored{config};
  restored.load_checkpoint(checkpoint);

  EXPECT_EQ(restored.stale_epochs_dropped(), 1u);
  EXPECT_EQ(restored.suppressed_clears(), detector.suppressed_clears());
  EXPECT_EQ(restored.last_epoch(), 1u);
  const auto before = detector.active(Metric::kBufRatio);
  const auto after = restored.active(Metric::kBufRatio);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].key, before[i].key);
    EXPECT_EQ(after[i].first_epoch, before[i].first_epoch);
    EXPECT_EQ(after[i].streak, before[i].streak);
    EXPECT_EQ(after[i].escalated, before[i].escalated);
    EXPECT_EQ(after[i].attributed, before[i].attributed);
    EXPECT_EQ(after[i].stats.sessions, before[i].stats.sessions);
  }
}

std::string checkpoint_bytes(const StreamingDetector& detector) {
  std::stringstream out{std::ios::in | std::ios::out | std::ios::binary};
  detector.save_checkpoint(out);
  return out.str();
}

void expect_load_throws(const std::string& bytes, const MonitorConfig& config,
                        const char* what_substr) {
  std::istringstream in{bytes, std::ios::binary};
  StreamingDetector detector{config};
  try {
    detector.load_checkpoint(in);
    FAIL() << "expected throw for " << what_substr;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(what_substr), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(Checkpoint, RejectsCorruptContainers) {
  const MonitorConfig config = small_monitor();
  StreamingDetector detector{config};
  (void)detector.ingest(monitored_epoch(0, true), 0);
  const std::string good = checkpoint_bytes(detector);

  std::string bad_magic = good;
  bad_magic[0] ^= 0x01;
  expect_load_throws(bad_magic, config, "bad magic");

  std::string bad_version = good;
  bad_version[4] = 99;
  expect_load_throws(bad_version, config, "unsupported version");

  // Any payload bit flip is caught by the trailing checksum.
  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x10;
  expect_load_throws(flipped, config, "checksum mismatch");

  std::string extended = good;
  extended.push_back('\0');
  expect_load_throws(extended, config, "checksum mismatch");

  MonitorConfig other = config;
  other.escalate_after = 7;
  expect_load_throws(good, other, "fingerprint mismatch");

  // Every truncation length is rejected (header, payload, or checksum cut).
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::istringstream in{good.substr(0, len), std::ios::binary};
    StreamingDetector fresh{config};
    EXPECT_THROW(fresh.load_checkpoint(in), std::runtime_error)
        << "truncated to " << len;
  }
}

TEST(Checkpoint, FailedLoadLeavesDetectorUnchanged) {
  const MonitorConfig config = small_monitor();
  StreamingDetector detector{config};
  (void)detector.ingest(monitored_epoch(0, true), 0);
  std::string corrupt = checkpoint_bytes(detector);
  corrupt[corrupt.size() / 2] ^= 0x01;

  StreamingDetector control{config};
  (void)control.ingest(monitored_epoch(0, true), 0);

  std::istringstream in{corrupt, std::ios::binary};
  EXPECT_THROW(detector.load_checkpoint(in), std::runtime_error);

  // The failed load must not have touched registry or counters: the next
  // epoch behaves exactly like the control's.
  EXPECT_EQ(detector.last_epoch(), control.last_epoch());
  EXPECT_EQ(fmt(detector.ingest(monitored_epoch(1, true), 1)),
            fmt(control.ingest(monitored_epoch(1, true), 1)));
}

TEST(Checkpoint, ConfigFingerprintTracksResultAffectingFieldsOnly) {
  const MonitorConfig base = small_monitor();
  EXPECT_EQ(StreamingDetector::config_fingerprint(base),
            StreamingDetector::config_fingerprint(base));

  MonitorConfig delay = base;
  delay.escalate_after = 3;
  MonitorConfig sessions = base;
  sessions.cluster_params.min_sessions = 51;
  MonitorConfig policy = base;
  policy.order_policy = EpochOrderPolicy::kSkipStale;
  for (const MonitorConfig& changed : {delay, sessions, policy}) {
    EXPECT_NE(StreamingDetector::config_fingerprint(base),
              StreamingDetector::config_fingerprint(changed));
  }

  // Engine strategy knobs are differential-tested bit-identical, so they may
  // legitimately change across a save/restore.
  MonitorConfig engine = base;
  engine.engine.fold_leaves = !engine.engine.fold_leaves;
  EXPECT_EQ(StreamingDetector::config_fingerprint(base),
            StreamingDetector::config_fingerprint(engine));
}

TEST(Checkpoint, AtomicFileSaveAndLoad) {
  const MonitorConfig config = small_monitor();
  StreamingDetector detector{config};
  (void)detector.ingest(monitored_epoch(0, true), 0);

  const std::filesystem::path dir{::testing::TempDir()};
  const std::filesystem::path path = dir / "vidqual_checkpoint_test.vqck";
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::filesystem::remove(path);
  std::filesystem::remove(tmp);

  detector.save_checkpoint(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(tmp)) << "temp file must be renamed";

  // Overwriting an existing checkpoint goes through the same rename.
  (void)detector.ingest(monitored_epoch(1, true), 1);
  detector.save_checkpoint(path);
  EXPECT_FALSE(std::filesystem::exists(tmp));

  StreamingDetector restored{config};
  restored.load_checkpoint(path);
  EXPECT_EQ(restored.last_epoch(), 1u);
  EXPECT_EQ(restored.total_opened(Metric::kBufRatio),
            detector.total_opened(Metric::kBufRatio));

  std::filesystem::remove(path);
  EXPECT_THROW(restored.load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, CrashBetweenWriteAndRenameKeepsThePreviousCheckpoint) {
  // Simulates a process killed after writing the temp file but before the
  // rename: the stray .tmp must never shadow the committed checkpoint, and
  // the next save must replace it cleanly.
  const MonitorConfig config = small_monitor();
  StreamingDetector detector{config};
  (void)detector.ingest(monitored_epoch(0, true), 0);

  const std::filesystem::path dir{::testing::TempDir()};
  const std::filesystem::path path = dir / "vidqual_checkpoint_crash.vqck";
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::filesystem::remove(path);
  std::filesystem::remove(tmp);

  detector.save_checkpoint(path);  // the committed v1

  // The "crash": a half-written temp file left beside the checkpoint.
  {
    std::ofstream garbage{tmp, std::ios::binary | std::ios::trunc};
    garbage << "VQCKpartial-write-then-kill-9";
  }
  ASSERT_TRUE(std::filesystem::exists(tmp));

  // Loading reads only the committed path — the garbage is invisible.
  StreamingDetector restored{config};
  restored.load_checkpoint(path);
  EXPECT_EQ(restored.last_epoch(), 0u);
  EXPECT_EQ(restored.total_opened(Metric::kBufRatio),
            detector.total_opened(Metric::kBufRatio));

  // The next save truncates the stray temp file and commits over it.
  (void)detector.ingest(monitored_epoch(1, true), 1);
  detector.save_checkpoint(path);
  EXPECT_FALSE(std::filesystem::exists(tmp));
  StreamingDetector after{config};
  after.load_checkpoint(path);
  EXPECT_EQ(after.last_epoch(), 1u);

  std::filesystem::remove(path);
}

TEST(Checkpoint, FsyncPathFailureIsAttributedToItsCaller) {
  const std::filesystem::path missing =
      std::filesystem::path{::testing::TempDir()} / "vq_no_such_file.vqck";
  std::filesystem::remove(missing);
  try {
    detail::fsync_path(missing, /*directory=*/false, "save_checkpoint");
    FAIL() << "fsync_path on a missing file must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("save_checkpoint"), std::string::npos) << what;
    EXPECT_NE(what.find(missing.string()), std::string::npos) << what;
  }
  // The happy path on a real directory is a no-op worth pinning too.
  EXPECT_NO_THROW(detail::fsync_path(::testing::TempDir(),
                                     /*directory=*/true, "test"));
}

}  // namespace
}  // namespace vq
