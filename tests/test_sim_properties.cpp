// Parameterized property suites over the simulation substrate, plus a
// consistency check between the streaming detector and the batch pipeline.

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/monitor.h"
#include "src/core/pipeline.h"
#include "src/gen/tracegen.h"
#include "src/simnet/player.h"

namespace vq {
namespace {

// ---------------------------------------------------------------------------
// Playback invariants across ABR kinds and path qualities.
class PlaybackSweep
    : public ::testing::TestWithParam<std::tuple<AbrKind, double>> {};

TEST_P(PlaybackSweep, InvariantsHoldAcrossSeeds) {
  const auto [kind, mean_kbps] = GetParam();
  AbrConfig abr;
  abr.kind = kind;
  abr.ladder_kbps = kind == AbrKind::kFixedSingle
                        ? std::vector<double>{1'800.0}
                        : std::vector<double>{400, 800, 1'500, 2'500};
  DeliveryConditions cond;
  cond.bandwidth_mean_kbps = mean_kbps;
  cond.bandwidth_sigma = 0.4;
  cond.fade_prob = 0.02;
  cond.join_failure_prob = 0.02;
  PlayerConfig player;

  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const QualityMetrics q =
        simulate_playback(cond, abr, player, 400.0, Xoshiro256ss{seed});
    EXPECT_GE(q.join_time_ms, 0.0F);
    EXPECT_LE(q.join_time_ms, player.join_timeout_ms + 1.0F);
    EXPECT_GE(q.buffering_ratio, 0.0F);
    EXPECT_LT(q.buffering_ratio, 1.0F);
    if (q.join_failed) {
      EXPECT_EQ(q.bitrate_kbps, 0.0F);
      EXPECT_EQ(q.buffering_ratio, 0.0F);
      EXPECT_EQ(q.join_time_ms, player.join_timeout_ms);
    } else {
      // Average bitrate is a convex combination of ladder rungs.
      EXPECT_GE(q.bitrate_kbps, static_cast<float>(abr.ladder_kbps.front()));
      EXPECT_LE(q.bitrate_kbps, static_cast<float>(abr.ladder_kbps.back()));
    }
  }
}

TEST_P(PlaybackSweep, FasterPathsAreNeverWorseOnAverage) {
  const auto [kind, mean_kbps] = GetParam();
  AbrConfig abr;
  abr.kind = kind;
  abr.ladder_kbps = kind == AbrKind::kFixedSingle
                        ? std::vector<double>{1'800.0}
                        : std::vector<double>{400, 800, 1'500, 2'500};
  PlayerConfig player;
  player.join_timeout_ms = 1e9;

  const auto mean_quality = [&](double kbps) {
    DeliveryConditions cond;
    cond.bandwidth_mean_kbps = kbps;
    cond.bandwidth_sigma = 0.3;
    double buffering = 0.0;
    double bitrate = 0.0;
    constexpr int kRuns = 40;
    for (std::uint64_t seed = 0; seed < kRuns; ++seed) {
      const QualityMetrics q =
          simulate_playback(cond, abr, player, 400.0, Xoshiro256ss{seed});
      buffering += q.buffering_ratio;
      bitrate += q.bitrate_kbps;
    }
    return std::pair{buffering / kRuns, bitrate / kRuns};
  };

  const auto [slow_buf, slow_bitrate] = mean_quality(mean_kbps);
  const auto [fast_buf, fast_bitrate] = mean_quality(mean_kbps * 4.0);
  EXPECT_LE(fast_buf, slow_buf + 0.01);
  EXPECT_GE(fast_bitrate, slow_bitrate - 50.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPaths, PlaybackSweep,
    ::testing::Combine(::testing::Values(AbrKind::kFixedSingle,
                                         AbrKind::kRateBased,
                                         AbrKind::kBufferBased),
                       ::testing::Values(600.0, 1'500.0, 6'000.0)),
    [](const ::testing::TestParamInfo<std::tuple<AbrKind, double>>& info) {
      return std::string(abr_kind_name(std::get<0>(info.param))) + "_" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "kbps";
    });

// ---------------------------------------------------------------------------
// Fade regime statistics.
TEST(BandwidthFades, FadesDepressThroughputByExpectedAmount) {
  BandwidthParams params;
  params.mean_kbps = 1'000.0;
  params.sigma = 0.0;  // isolate the fade process
  params.fade_prob = 0.05;
  params.fade_depth = 0.2;
  params.fade_continue = 0.6;
  BandwidthProcess process{params, Xoshiro256ss{99}};

  int faded = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double kbps = process.next_kbps();
    if (kbps < 500.0) {
      ++faded;
      EXPECT_NEAR(kbps, 200.0, 1e-6);
    } else {
      EXPECT_NEAR(kbps, 1'000.0, 1e-6);
    }
  }
  // Stationary fade occupancy: entry p / (entry p + exit (1-continue))
  // for small p ~= p / (p + 0.4) = 0.111.
  EXPECT_NEAR(faded / static_cast<double>(kN), 0.111, 0.01);
}

TEST(BandwidthFades, ZeroProbabilityMeansNoFades) {
  BandwidthParams params;
  params.mean_kbps = 1'000.0;
  params.sigma = 0.0;
  params.fade_prob = 0.0;
  BandwidthProcess process{params, Xoshiro256ss{5}};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_NEAR(process.next_kbps(), 1'000.0, 1e-6);
  }
}

// ---------------------------------------------------------------------------
// StreamingDetector vs batch pipeline: identical critical clusters when fed
// the same epochs contiguously with the same parameters.
TEST(MonitorPipelineConsistency, SameCriticalClustersPerEpoch) {
  WorldConfig world_config;
  world_config.num_sites = 40;
  world_config.num_cdns = 8;
  world_config.num_asns = 120;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 6;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 6;
  trace_config.sessions_per_epoch = 1'500;
  const SessionTable trace = generate_trace(world, events, trace_config);

  PipelineConfig pipeline_config;
  pipeline_config.cluster_params.min_sessions = 60;
  const PipelineResult result = run_pipeline(trace, pipeline_config);

  MonitorConfig monitor_config;
  monitor_config.cluster_params = pipeline_config.cluster_params;
  StreamingDetector detector{monitor_config};

  for (std::uint32_t e = 0; e < 6; ++e) {
    (void)detector.ingest(trace.epoch(e), e);
    for (const Metric m : kAllMetrics) {
      const auto& batch = result.at(m, e).analysis.criticals;
      const auto live = detector.active(m);
      ASSERT_EQ(live.size(), batch.size())
          << "epoch " << e << " metric " << metric_name(m);
      // Same key sets and attribution masses.
      for (const Incident& incident : live) {
        const auto it = std::find_if(
            batch.begin(), batch.end(), [&](const CriticalRecord& c) {
              return c.key == incident.key;
            });
        ASSERT_NE(it, batch.end());
        EXPECT_DOUBLE_EQ(it->attributed, incident.attributed);
      }
    }
  }
}

}  // namespace
}  // namespace vq
