// The bench harness's pipeline-result cache must be exactly round-trip
// faithful — a silent mismatch would corrupt every figure downstream.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "bench/bench_common.h"
#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

PipelineResult make_result(PipelineConfig& config) {
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 4; ++e) {
    for (std::uint16_t asn = 1; asn <= 4; ++asn) {
      test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = asn},
                         test::bad_buffering(), 15);
      test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = asn},
                         test::failed_join(), 5);
      test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = asn},
                         test::good_quality(), 200);
    }
  }
  config.cluster_params.min_sessions = 50;
  return run_pipeline(SessionTable{std::move(sessions)}, config);
}

void expect_equal(const PipelineResult& a, const PipelineResult& b) {
  ASSERT_EQ(a.num_epochs, b.num_epochs);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < a.num_epochs; ++e) {
      const auto& x = a.at(m, e);
      const auto& y = b.at(m, e);
      EXPECT_EQ(x.analysis.sessions, y.analysis.sessions);
      EXPECT_EQ(x.analysis.problem_sessions, y.analysis.problem_sessions);
      EXPECT_EQ(x.analysis.problem_sessions_in_pc,
                y.analysis.problem_sessions_in_pc);
      EXPECT_DOUBLE_EQ(x.analysis.global_ratio, y.analysis.global_ratio);
      EXPECT_EQ(x.analysis.num_problem_clusters,
                y.analysis.num_problem_clusters);
      EXPECT_DOUBLE_EQ(x.analysis.attributed_mass,
                       y.analysis.attributed_mass);
      ASSERT_EQ(x.analysis.criticals.size(), y.analysis.criticals.size());
      for (std::size_t i = 0; i < x.analysis.criticals.size(); ++i) {
        EXPECT_EQ(x.analysis.criticals[i].key, y.analysis.criticals[i].key);
        EXPECT_DOUBLE_EQ(x.analysis.criticals[i].attributed,
                         y.analysis.criticals[i].attributed);
        EXPECT_EQ(x.analysis.criticals[i].stats.sessions,
                  y.analysis.criticals[i].stats.sessions);
        EXPECT_EQ(x.analysis.criticals[i].stats.problems,
                  y.analysis.criticals[i].stats.problems);
      }
      EXPECT_EQ(x.analysis.problem_cluster_keys,
                y.analysis.problem_cluster_keys);
    }
  }
}

TEST(BenchResultCache, RoundTripsExactly) {
  PipelineConfig config;
  const PipelineResult original = make_result(config);
  const auto path = std::filesystem::temp_directory_path() /
                    "vidqual_test_result_cache.vqpr";
  bench::detail::save_result(path, original);
  const PipelineResult loaded = bench::detail::load_result(path, config);
  expect_equal(original, loaded);
  std::filesystem::remove(path);
}

TEST(BenchResultCache, RejectsConfigMismatch) {
  PipelineConfig config;
  const PipelineResult original = make_result(config);
  const auto path = std::filesystem::temp_directory_path() /
                    "vidqual_test_result_cache2.vqpr";
  bench::detail::save_result(path, original);
  PipelineConfig other = config;
  other.cluster_params.min_sessions += 1;
  EXPECT_THROW((void)bench::detail::load_result(path, other),
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BenchResultCache, RejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() /
                    "vidqual_test_result_cache3.vqpr";
  {
    std::ofstream out{path, std::ios::binary};
    out << "not a cache";
  }
  EXPECT_THROW((void)bench::detail::load_result(path, {}),
               std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW((void)bench::detail::load_result(path, {}),
               std::runtime_error);  // missing file
}

TEST(BenchEnv, EnvParsingFallsBack) {
  ::unsetenv("VIDQUAL_TEST_KNOB");
  EXPECT_EQ(bench::env_u64("VIDQUAL_TEST_KNOB", 42), 42u);
  ::setenv("VIDQUAL_TEST_KNOB", "17", 1);
  EXPECT_EQ(bench::env_u64("VIDQUAL_TEST_KNOB", 42), 17u);
  ::unsetenv("VIDQUAL_TEST_KNOB");
}

}  // namespace
}  // namespace vq
