// Differential tests for the incremental delta engine: feeding
// IncrementalLattice one fold per epoch must reproduce the from-scratch
// expand_fold + find_critical_clusters path bit for bit — criticals (same
// order), attribution doubles, problem_cluster_keys, problem_sessions_in_pc
// — at every epoch boundary, for workers x shards in {1,4}^2, under churn,
// retirement, re-addition, gaps, and empty epochs.

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/critical_cluster.h"
#include "src/core/incremental.h"
#include "src/gen/events.h"
#include "src/gen/tracegen.h"
#include "src/gen/world.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace vq {
namespace {

/// Bit-exact equality of every analysis field, including doubles (the
/// engines are required to share one floating-point accumulation order, so
/// EXPECT_EQ — not NEAR — is the contract).
void expect_analyses_identical(const CriticalAnalysis& expected,
                               const CriticalAnalysis& actual) {
  EXPECT_EQ(expected.epoch, actual.epoch);
  EXPECT_EQ(expected.metric, actual.metric);
  EXPECT_EQ(expected.sessions, actual.sessions);
  EXPECT_EQ(expected.problem_sessions, actual.problem_sessions);
  EXPECT_EQ(expected.problem_sessions_in_pc, actual.problem_sessions_in_pc);
  EXPECT_EQ(expected.global_ratio, actual.global_ratio);
  EXPECT_EQ(expected.num_problem_clusters, actual.num_problem_clusters);
  EXPECT_EQ(expected.problem_cluster_keys, actual.problem_cluster_keys);
  EXPECT_EQ(expected.attributed_mass, actual.attributed_mass);
  ASSERT_EQ(expected.criticals.size(), actual.criticals.size());
  for (std::size_t i = 0; i < expected.criticals.size(); ++i) {
    EXPECT_EQ(expected.criticals[i].key, actual.criticals[i].key);
    EXPECT_EQ(expected.criticals[i].attributed, actual.criticals[i].attributed);
    EXPECT_EQ(expected.criticals[i].stats, actual.criticals[i].stats);
  }
}

/// Runs the incremental engine against the from-scratch path over a stream
/// of epochs and asserts bit-identity at every boundary.  Also checks that
/// the retained cell content matches the from-scratch table exactly (every
/// from-scratch cell present with equal stats; every extra retained cell
/// decayed to zero).
void run_differential(const std::vector<std::vector<Session>>& epochs,
                      const ProblemClusterParams& params,
                      std::size_t workers, std::size_t shards) {
  const ProblemThresholds thresholds;
  const ClusterEngineConfig config;
  std::optional<ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  IncrementalLattice lattice{params};
  for (std::uint32_t e = 0; e < epochs.size(); ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    const LeafFold fold = fold_sessions(epochs[e], thresholds, e);
    const EpochClusterTable table =
        expand_fold(fold, config, pool_ptr, shards);
    const std::array<CriticalAnalysis, kNumMetrics> actual =
        lattice.advance(fold, pool_ptr, shards);
    for (const Metric m : kAllMetrics) {
      const CriticalAnalysis expected =
          find_critical_clusters(fold, table, params, m, pool_ptr, shards);
      expect_analyses_identical(expected,
                                actual[static_cast<std::uint8_t>(m)]);
    }

    // Content differential: retained cells agree with the from-scratch
    // table; cells only the incremental store knows are decayed to zero.
    std::size_t live_cells = 0;
    table.clusters.for_each([&](std::uint64_t raw, const ClusterStats& s) {
      const ClusterStats* kept = lattice.cells().find(raw);
      ASSERT_NE(kept, nullptr);
      EXPECT_EQ(*kept, s);
    });
    lattice.cells().for_each([&](std::uint64_t raw, const ClusterStats& s) {
      if (s.sessions != 0) {
        ++live_cells;
      } else {
        EXPECT_EQ(table.clusters.find(raw), nullptr)
            << "cell decayed to zero but alive from scratch: " << raw;
        EXPECT_EQ(s, ClusterStats{});
      }
    });
    EXPECT_EQ(live_cells, table.clusters.size());
  }
}

std::vector<std::vector<Session>> generated_epochs(std::uint32_t num_epochs) {
  WorldConfig world_config;
  world_config.num_sites = 10;
  world_config.num_cdns = 3;
  world_config.num_asns = 20;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = num_epochs;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = num_epochs;
  trace_config.sessions_per_epoch = 8000;  // diurnal swing churns the leaves
  std::vector<std::vector<Session>> epochs;
  epochs.reserve(num_epochs);
  for (std::uint32_t e = 0; e < num_epochs; ++e) {
    epochs.push_back(generate_epoch(world, events, trace_config, e));
  }
  return epochs;
}

class IncrementalDifferential
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(IncrementalDifferential, MatchesFromScratchAtEveryEpoch) {
  static const std::vector<std::vector<Session>> epochs = generated_epochs(10);
  const auto [workers, shards] = GetParam();
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 60};
  run_differential(epochs, params,
                   static_cast<std::size_t>(workers),
                   static_cast<std::size_t>(shards));
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByShards, IncrementalDifferential,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 4}, std::pair{4, 1},
                      std::pair{4, 4}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.first) + "s" +
             std::to_string(info.param.second);
    });

/// Hand-built churn scenario: update / steady / retire / add / re-add /
/// identical epoch / empty epoch / rebuild — every delta path in one
/// stream, serial and sharded.
std::vector<std::vector<Session>> churn_epochs() {
  using test::Attrs;
  const Attrs a{.site = 1, .cdn = 1, .asn = 1};
  const Attrs b{.site = 2, .cdn = 1, .asn = 2};
  const Attrs c{.site = 3, .cdn = 2, .asn = 3};
  const Attrs d{.site = 4, .cdn = 2, .asn = 4};

  std::vector<std::vector<Session>> epochs(7);
  // e0: A bad, B and C good.
  test::add_sessions(epochs[0], 0, a, test::bad_buffering(), 120);
  test::add_sessions(epochs[0], 0, b, test::good_quality(), 300);
  test::add_sessions(epochs[0], 0, c, test::good_quality(), 200);
  // e1: A worsens, B steady, C retires, D arrives bad.
  test::add_sessions(epochs[1], 1, a, test::bad_buffering(), 200);
  test::add_sessions(epochs[1], 1, b, test::good_quality(), 300);
  test::add_sessions(epochs[1], 1, d, test::bad_join_time(), 150);
  // e2: C re-added, D retires, A recovers partially.
  test::add_sessions(epochs[2], 2, a, test::bad_buffering(), 80);
  test::add_sessions(epochs[2], 2, a, test::good_quality(), 120);
  test::add_sessions(epochs[2], 2, b, test::good_quality(), 300);
  test::add_sessions(epochs[2], 2, c, test::bad_bitrate(), 180);
  // e3: identical to e2 (the all-cache-hit epoch).
  for (const Session& s : epochs[2]) {
    Session copy = s;
    copy.epoch = 3;
    epochs[3].push_back(copy);
  }
  // e4: empty epoch (everything retires).
  // e5: full rebuild from empty.
  test::add_sessions(epochs[5], 5, a, test::failed_join(), 90);
  test::add_sessions(epochs[5], 5, c, test::good_quality(), 250);
  // e6: steady state again.
  for (const Session& s : epochs[5]) {
    Session copy = s;
    copy.epoch = 6;
    epochs[6].push_back(copy);
  }
  return epochs;
}

TEST(IncrementalScenarios, ChurnRetireReAddEmptyRebuild) {
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 100};
  run_differential(churn_epochs(), params, 1, 1);
  run_differential(churn_epochs(), params, 4, 4);
}

TEST(IncrementalScenarios, MinSessionsZeroPathological) {
  // min_sessions = 0 makes every cell significant including decayed ones;
  // the zero-threshold arm of is_problem_cluster must keep dead cells
  // invisible to every output.
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 0};
  run_differential(churn_epochs(), params, 1, 1);
}

TEST(IncrementalScenarios, DeltaStatsAccountChurn) {
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 100};
  const std::vector<std::vector<Session>> epochs = churn_epochs();
  IncrementalLattice lattice{params};

  lattice.advance(fold_sessions(epochs[0], thresholds, 0));
  EXPECT_EQ(lattice.last_delta().leaves_added, 3u);
  EXPECT_EQ(lattice.last_delta().leaves_retired, 0u);
  EXPECT_EQ(lattice.last_delta().active_leaves, 3u);
  // First epoch: everything is new, so every flag pass is full and no
  // candidate evaluation can hit the (empty) cache.
  for (const bool full : lattice.last_delta().full_flag_pass) {
    EXPECT_TRUE(full);
  }
  EXPECT_EQ(lattice.last_delta().cache_hits, 0u);

  lattice.advance(fold_sessions(epochs[1], thresholds, 1));
  EXPECT_EQ(lattice.last_delta().leaves_added, 1u);    // D
  EXPECT_EQ(lattice.last_delta().leaves_updated, 1u);  // A
  EXPECT_EQ(lattice.last_delta().leaves_retired, 1u);  // C
  EXPECT_EQ(lattice.last_delta().active_leaves, 3u);

  lattice.advance(fold_sessions(epochs[2], thresholds, 2));
  const std::uint64_t misses_after_e2 = lattice.last_delta().cache_misses;
  EXPECT_GT(misses_after_e2, 0u);

  // e3 repeats e2 exactly: no leaf changes, no cell deltas, no full flag
  // pass, and every per-(leaf, metric) candidate evaluation is a cache hit.
  lattice.advance(fold_sessions(epochs[3], thresholds, 3));
  EXPECT_EQ(lattice.last_delta().leaves_added, 0u);
  EXPECT_EQ(lattice.last_delta().leaves_updated, 0u);
  EXPECT_EQ(lattice.last_delta().leaves_retired, 0u);
  EXPECT_EQ(lattice.last_delta().cells_touched, 0u);
  EXPECT_EQ(lattice.last_delta().cache_misses, 0u);
  EXPECT_GT(lattice.last_delta().cache_hits, 0u);
  for (const bool full : lattice.last_delta().full_flag_pass) {
    EXPECT_FALSE(full);
  }

  // e4 is empty: every leaf retires, every live cell decays to zero.
  lattice.advance(fold_sessions({}, thresholds, 4));
  EXPECT_EQ(lattice.last_delta().leaves_retired, 3u);  // a, b, c (d already gone)
  EXPECT_EQ(lattice.last_delta().active_leaves, 0u);
  EXPECT_EQ(lattice.num_active_leaves(), 0u);
  EXPECT_EQ(lattice.root(), ClusterStats{});
}

TEST(IncrementalScenarios, EpochGapIsJustAnotherDelta) {
  // The engine keys on fold content, not epoch arithmetic: a gap in epoch
  // ids (monitor streams drop stale/partial epochs) must not disturb the
  // differential.
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 100};
  std::vector<std::vector<Session>> epochs = churn_epochs();
  const std::array<std::uint32_t, 4> stream_epochs = {2, 5, 9, 42};
  IncrementalLattice lattice{params};
  for (std::size_t i = 0; i < stream_epochs.size(); ++i) {
    const std::uint32_t e = stream_epochs[i];
    std::vector<Session> sessions = epochs[i];
    for (Session& s : sessions) s.epoch = e;
    const LeafFold fold = fold_sessions(sessions, thresholds, e);
    const EpochClusterTable table = expand_fold(fold, ClusterEngineConfig{});
    const auto actual = lattice.advance(fold);
    for (const Metric m : kAllMetrics) {
      expect_analyses_identical(
          find_critical_clusters(fold, table, params, m),
          actual[static_cast<std::uint8_t>(m)]);
    }
  }
}

}  // namespace
}  // namespace vq
