// Prevalence/persistence analytics, including a reconstruction of the
// paper's Figure 6 worked example.

#include "src/core/prevalence.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

ClusterKey key_of(std::uint8_t mask, const Attrs& attrs) {
  return ClusterKey::pack(mask, attrs.vec());
}

const ClusterTimeline* find_timeline(const PrevalenceReport& report,
                                     const ClusterKey& key) {
  const auto it = std::find_if(
      report.timelines.begin(), report.timelines.end(),
      [&](const ClusterTimeline& t) { return t.key == key; });
  return it == report.timelines.end() ? nullptr : &*it;
}

// Paper Figure 6: six epochs; cluster activity as drawn there.
//   ASN1:        epochs {1, 2}           prevalence 2/6, streaks {2}
//   ASN2:        epochs {2, 3, 4, 5}     prevalence 4/6, streaks {4}
//   ASN1,CDN1:   epochs {0, 1, 3, 4}     prevalence 4/6, streaks {2, 2}
//   ASN2,CDN1:   epochs {1, 2}           prevalence 2/6, streaks {2}
//   CDN1:        epoch {5}               prevalence 1/6, streaks {1}
//   CDN2:        epochs {0, 1, 2, 4, 5}  prevalence 5/6, streaks {3, 2}
TEST(Prevalence, Figure6WorkedExample) {
  const ClusterKey asn1 = key_of(dim_bit(AttrDim::kAsn), Attrs{.asn = 1});
  const ClusterKey asn2 = key_of(dim_bit(AttrDim::kAsn), Attrs{.asn = 2});
  const ClusterKey asn1cdn1 =
      key_of(dim_bit(AttrDim::kAsn) | dim_bit(AttrDim::kCdn),
             Attrs{.cdn = 1, .asn = 1});
  const ClusterKey asn2cdn1 =
      key_of(dim_bit(AttrDim::kAsn) | dim_bit(AttrDim::kCdn),
             Attrs{.cdn = 1, .asn = 2});
  const ClusterKey cdn1 = key_of(dim_bit(AttrDim::kCdn), Attrs{.cdn = 1});
  const ClusterKey cdn2 = key_of(dim_bit(AttrDim::kCdn), Attrs{.cdn = 2});

  std::vector<std::vector<std::uint64_t>> keys_by_epoch(6);
  const auto at = [&](std::uint32_t e, const ClusterKey& k) {
    keys_by_epoch[e].push_back(k.raw());
  };
  at(1, asn1);
  at(2, asn1);
  for (std::uint32_t e : {2u, 3u, 4u, 5u}) at(e, asn2);
  for (std::uint32_t e : {0u, 1u, 3u, 4u}) at(e, asn1cdn1);
  at(1, asn2cdn1);
  at(2, asn2cdn1);
  at(5, cdn1);
  for (std::uint32_t e : {0u, 1u, 2u, 4u, 5u}) at(e, cdn2);

  const PrevalenceReport report = build_prevalence(keys_by_epoch, 6);
  ASSERT_EQ(report.timelines.size(), 6u);

  const auto* t_asn1 = find_timeline(report, asn1);
  ASSERT_NE(t_asn1, nullptr);
  EXPECT_NEAR(t_asn1->prevalence, 2.0 / 6.0, 1e-12);
  EXPECT_EQ(t_asn1->median_persistence, 2u);
  EXPECT_EQ(t_asn1->max_persistence, 2u);

  const auto* t_asn2 = find_timeline(report, asn2);
  ASSERT_NE(t_asn2, nullptr);
  EXPECT_NEAR(t_asn2->prevalence, 4.0 / 6.0, 1e-12);
  EXPECT_EQ(t_asn2->max_persistence, 4u);

  const auto* t_pair = find_timeline(report, asn1cdn1);
  ASSERT_NE(t_pair, nullptr);
  EXPECT_NEAR(t_pair->prevalence, 4.0 / 6.0, 1e-12);
  EXPECT_EQ(t_pair->median_persistence, 2u);  // streaks {2, 2}
  EXPECT_EQ(t_pair->max_persistence, 2u);

  const auto* t_cdn2 = find_timeline(report, cdn2);
  ASSERT_NE(t_cdn2, nullptr);
  EXPECT_NEAR(t_cdn2->prevalence, 5.0 / 6.0, 1e-12);
  EXPECT_EQ(t_cdn2->median_persistence, 2u);  // lower median of {3, 2}
  EXPECT_EQ(t_cdn2->max_persistence, 3u);

  const auto* t_cdn1 = find_timeline(report, cdn1);
  ASSERT_NE(t_cdn1, nullptr);
  EXPECT_NEAR(t_cdn1->prevalence, 1.0 / 6.0, 1e-12);
  EXPECT_EQ(t_cdn1->max_persistence, 1u);
}

TEST(Prevalence, EmptyInput) {
  const PrevalenceReport report = build_prevalence({}, 0);
  EXPECT_TRUE(report.timelines.empty());
  EXPECT_TRUE(report.prevalences().empty());
}

TEST(Prevalence, EpochCountMismatchThrows) {
  // Fewer (or more) key lists than epochs would silently skew every
  // denominator; the contract is one list per epoch.
  std::vector<std::vector<std::uint64_t>> keys_by_epoch(3);
  const ClusterKey k = key_of(dim_bit(AttrDim::kSite), Attrs{.site = 1});
  keys_by_epoch[0] = {k.raw()};
  EXPECT_THROW((void)build_prevalence(keys_by_epoch, 6),
               std::invalid_argument);
  EXPECT_THROW((void)build_prevalence(keys_by_epoch, 2),
               std::invalid_argument);
  EXPECT_THROW((void)build_prevalence({}, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)build_prevalence(keys_by_epoch, 3));
}

TEST(Prevalence, DuplicateKeysWithinEpochCountOnce) {
  std::vector<std::vector<std::uint64_t>> keys_by_epoch(2);
  const ClusterKey k = key_of(dim_bit(AttrDim::kSite), Attrs{.site = 3});
  keys_by_epoch[0] = {k.raw(), k.raw()};
  const PrevalenceReport report = build_prevalence(keys_by_epoch, 2);
  ASSERT_EQ(report.timelines.size(), 1u);
  EXPECT_NEAR(report.timelines[0].prevalence, 0.5, 1e-12);
}

TEST(Prevalence, AccessorsMatchTimelines) {
  std::vector<std::vector<std::uint64_t>> keys_by_epoch(4);
  const ClusterKey a = key_of(dim_bit(AttrDim::kSite), Attrs{.site = 1});
  const ClusterKey b = key_of(dim_bit(AttrDim::kSite), Attrs{.site = 2});
  keys_by_epoch[0] = {a.raw()};
  keys_by_epoch[1] = {a.raw(), b.raw()};
  keys_by_epoch[3] = {a.raw()};
  const PrevalenceReport report = build_prevalence(keys_by_epoch, 4);
  EXPECT_EQ(report.prevalences().size(), 2u);
  EXPECT_EQ(report.median_persistences().size(), 2u);
  EXPECT_EQ(report.max_persistences().size(), 2u);
  const auto* ta = find_timeline(report, a);
  ASSERT_NE(ta, nullptr);
  EXPECT_EQ(ta->epochs, (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_EQ(ta->max_persistence, 2u);
  EXPECT_EQ(ta->median_persistence, 1u);  // streaks {2, 1} -> lower median 1
}

TEST(Prevalence, ExtractorsPullKeysFromPipelineResult) {
  // Minimal end-to-end: a persistent bad CDN across 3 epochs.
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 3; ++e) {
    test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = 1},
                       test::bad_buffering(), 60);
    test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = 2},
                       test::good_quality(), 40);
    test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = 1},
                       test::good_quality(), 400);
  }
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result = run_pipeline(SessionTable{sessions}, config);

  const auto pc_keys = problem_cluster_keys(result, Metric::kBufRatio);
  const auto cc_keys = critical_cluster_keys(result, Metric::kBufRatio);
  ASSERT_EQ(pc_keys.size(), 3u);
  ASSERT_EQ(cc_keys.size(), 3u);
  for (std::uint32_t e = 0; e < 3; ++e) {
    EXPECT_FALSE(pc_keys[e].empty());
    EXPECT_FALSE(cc_keys[e].empty());
  }
  const PrevalenceReport cc_report = build_prevalence(cc_keys, 3);
  // The same critical cluster must recur in all 3 epochs.
  bool found_full_prevalence = false;
  for (const auto& t : cc_report.timelines) {
    if (t.prevalence == 1.0 && t.max_persistence == 3) {
      found_full_prevalence = true;
    }
  }
  EXPECT_TRUE(found_full_prevalence);
}

}  // namespace
}  // namespace vq
