// Socket-level chaos suite (tests/socket_fault.h): mid-frame disconnects,
// in-flight byte flips, stalled writers, interleaved producers, garbage
// floods, and overload shedding — each through a real socket against a live
// server, each ending on the same two assertions: exact accounting and a
// server healthy enough to serve the next producer.

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/attributes.h"
#include "src/core/session.h"
#include "src/serve/framing.h"
#include "src/serve/producer.h"
#include "src/serve/server.h"
#include "tests/socket_fault.h"
#include "tests/test_support.h"

namespace vq::serve {
namespace {

using test::ServeHarness;
using test::drip;
using test::flip_byte;
using test::truncate_at;
using test::wait_until;
using std::chrono::milliseconds;

AttributeSchema tiny_schema() { return test::one_value_schema(); }

std::vector<Session> rows_at(std::uint32_t epoch, std::size_t n) {
  std::vector<Session> rows;
  test::add_sessions(rows, epoch, test::Attrs{}, test::good_quality(), n);
  return rows;
}

ServeConfig manual_drain_config() {
  ServeConfig config;
  config.drain_on_idle = false;
  return config;
}

/// The post-chaos sanity pass: a clean producer must still be served in
/// full.  Sends at a far-future epoch — once the chaos connection closed,
/// the watermark moved past the epochs it touched, and a replay of those
/// would (correctly) count as stale rather than admitted.
void expect_server_still_serves(ServeHarness& harness, std::size_t n) {
  const std::uint64_t before = harness.stats().rows_admitted;
  Producer producer{harness.address()};
  producer.send_hello(tiny_schema());
  producer.send_rows(rows_at(50, n));
  producer.close();
  EXPECT_TRUE(wait_until(
      [&] { return harness.stats().rows_admitted >= before + n; },
      milliseconds{5000}));
}

TEST(ServeChaos, MidFrameDisconnectLosesNoAccounting) {
  ServeHarness harness{manual_drain_config()};
  {
    Producer producer{harness.address()};
    producer.send_hello(tiny_schema());
    const std::string frame = encode_data(rows_at(0, 4));
    producer.send_raw(truncate_at(frame, frame.size() / 2));
  }  // disconnect mid-frame
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().connections_closed >= 1; },
      milliseconds{5000}));

  expect_server_still_serves(harness, 6);
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  ASSERT_GE(stats.connections.size(), 1u);
  EXPECT_TRUE(stats.connections[0].closed_mid_frame);
  EXPECT_EQ(stats.connections[0].rows_received, 0u);  // frame never completed
  EXPECT_EQ(stats.rows_admitted, 6u);
}

TEST(ServeChaos, InFlightByteFlipQuarantinesExactlyThatFrame) {
  ServeHarness harness{manual_drain_config()};
  {
    Producer producer{harness.address()};
    producer.send_hello(tiny_schema());
    // Frame 1 arrives flipped (checksum must catch it), frame 2 clean.
    producer.send_raw(
        flip_byte(encode_data(rows_at(0, 5)), kFrameHeaderBytes + 3, 0x10));
    producer.send_raw(encode_data(rows_at(0, 3)));
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().rows_admitted >= 3; }, milliseconds{5000}));
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_received, 8u);
  EXPECT_EQ(stats.rows_admitted, 3u);
  EXPECT_EQ(stats.rows_quarantined, 5u);  // exactly the flipped frame
  EXPECT_EQ(
      stats.frame_errors[static_cast<int>(FrameError::kBadChecksum)], 1u);
}

TEST(ServeChaos, StalledMidFrameWriterHitsTheReadDeadline) {
  ServeConfig config = manual_drain_config();
  config.read_timeout = milliseconds{150};
  config.idle_timeout = milliseconds{60'000};  // isolate the read deadline
  ServeHarness harness{std::move(config)};

  Producer producer{harness.address()};
  producer.send_hello(tiny_schema());
  const std::string frame = encode_data(rows_at(0, 4));
  producer.send_raw(frame.substr(0, kFrameHeaderBytes + 5));  // ...stall.
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().read_timeout_closed >= 1; },
      milliseconds{5000}));
  producer.close();

  expect_server_still_serves(harness, 4);
  EXPECT_EQ(harness.drain(), 0);
  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  ASSERT_GE(stats.connections.size(), 1u);
  EXPECT_EQ(stats.connections[0].close_reason, "read deadline (mid-frame)");
}

TEST(ServeChaos, SilentConnectionHitsTheIdleDeadline) {
  ServeConfig config = manual_drain_config();
  config.idle_timeout = milliseconds{150};
  ServeHarness harness{std::move(config)};

  Producer producer{harness.address()};
  producer.send_hello(tiny_schema());  // then say nothing
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().idle_closed >= 1; }, milliseconds{5000}));
  producer.close();
  EXPECT_EQ(harness.drain(), 0);
  EXPECT_TRUE(harness.stats().accounting_exact());
}

TEST(ServeChaos, DrippedBytesAcrossTinyWritesStillDecode) {
  ServeConfig config = manual_drain_config();
  config.read_timeout = milliseconds{10'000};
  ServeHarness harness{std::move(config)};
  {
    Producer producer{harness.address()};
    // Hello + two frames, delivered 9 bytes at a time: every frame boundary
    // lands mid-write, exercising partial-frame reassembly end to end.
    const std::string wire = encode_hello(tiny_schema()) +
                             encode_data(rows_at(0, 3)) +
                             encode_data(rows_at(1, 2));
    drip(producer, wire, 9, milliseconds{1});
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().rows_admitted >= 5; }, milliseconds{5000}));
  EXPECT_EQ(harness.drain(), 0);
  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_received, 5u);
  EXPECT_EQ(stats.rows_admitted, 5u);
}

TEST(ServeChaos, InterleavedProducersConserveEveryRow) {
  ServeHarness harness{manual_drain_config()};
  constexpr std::uint32_t kEpochs = 4;
  constexpr std::size_t kRowsEach = 50;

  // Two independent producers racing on real sockets is the scenario; the
  // pool's fork-join shape cannot express it.
  std::thread a{[&] {  // vq-lint: allow(naked-thread)
    Producer producer{harness.address()};
    producer.send_hello(tiny_schema());
    for (std::uint32_t e = 0; e < kEpochs; ++e) {
      producer.send_rows(rows_at(e, kRowsEach), 16);
      std::this_thread::sleep_for(milliseconds{5});
    }
  }};
  std::thread b{[&] {  // vq-lint: allow(naked-thread)
    Producer producer{harness.address()};
    producer.send_hello(tiny_schema());
    for (std::uint32_t e = 0; e < kEpochs; ++e) {
      producer.send_rows(rows_at(e, kRowsEach), 7);
      std::this_thread::sleep_for(milliseconds{3});
    }
  }};
  a.join();
  b.join();
  ASSERT_TRUE(wait_until(
      [&] {
        return harness.stats().rows_admitted >= 2 * kEpochs * kRowsEach;
      },
      milliseconds{5000}));
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_received, 2u * kEpochs * kRowsEach);
  EXPECT_EQ(stats.rows_admitted, 2u * kEpochs * kRowsEach);
  EXPECT_EQ(stats.rows_stale, 0u);  // both streams were non-decreasing
  EXPECT_EQ(stats.epochs_sealed, kEpochs);
  EXPECT_EQ(stats.connections_accepted, 2u);
}

TEST(ServeChaos, GarbageFloodNeverReachesTheDetector) {
  ServeHarness harness{manual_drain_config()};
  {
    Producer producer{harness.address()};
    producer.send_hello(tiny_schema());
    producer.send_raw(std::string(4096, '\xfb'));  // no magic anywhere
    producer.send_raw(encode_data(rows_at(0, 2)));  // resync target
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().rows_admitted >= 2; }, milliseconds{5000}));

  expect_server_still_serves(harness, 3);
  EXPECT_EQ(harness.drain(), 0);
  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  ASSERT_GE(stats.connections.size(), 1u);
  EXPECT_GE(stats.connections[0].bytes_skipped, 4096u);
  EXPECT_GE(
      stats.frame_errors[static_cast<int>(FrameError::kBadMagic)], 1u);
}

TEST(ServeChaos, FloodAgainstTinyQueueShedsWithExactAccounting) {
  ServeConfig config = manual_drain_config();
  config.queue_capacity_rows = 64;
  config.overload = OverloadPolicy::kShedOldest;
  ServeHarness harness{std::move(config)};

  constexpr std::size_t kOversize = 65;  // > capacity: every push sheds
  constexpr int kFrames = 10;
  {
    Producer producer{harness.address()};
    producer.send_hello(tiny_schema());
    for (int i = 0; i < kFrames; ++i) {
      producer.send_rows(rows_at(0, kOversize), kOversize);
    }
    // Smaller frames compete for the 64-row budget: some admitted, any
    // overflow evicted oldest-first — all of it attributed.
    for (int i = 0; i < kFrames; ++i) {
      producer.send_rows(rows_at(1, 32), 32);
    }
  }
  ASSERT_TRUE(wait_until(
      [&] {
        const ServeStats s = harness.stats();
        return s.rows_received >=
               kFrames * kOversize + kFrames * 32;
      },
      milliseconds{5000}));
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_GE(stats.rows_shed, static_cast<std::uint64_t>(kFrames) * kOversize);
  EXPECT_GT(stats.rows_admitted, 0u);
  EXPECT_LE(stats.queue_highwater, 64u);
}

TEST(ServeChaos, BlockPolicyDeadlineShedsInsteadOfWedgingTheAcceptor) {
  ServeConfig config = manual_drain_config();
  config.queue_capacity_rows = 64;
  config.overload = OverloadPolicy::kBlockWithDeadline;
  config.push_deadline = milliseconds{20};
  ServeHarness harness{std::move(config)};

  constexpr std::size_t kOversize = 100;  // can never fit
  {
    Producer producer{harness.address()};
    producer.send_hello(tiny_schema());
    producer.send_rows(rows_at(0, kOversize), kOversize);
    producer.send_rows(rows_at(1, 10), 10);  // the acceptor must still move
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().rows_received >= kOversize + 10; },
      milliseconds{5000}));
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_shed, kOversize);
  EXPECT_EQ(stats.rows_admitted, 10u);
}

}  // namespace
}  // namespace vq::serve
