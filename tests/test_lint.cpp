// Tests for the vidqual_lint engine (tools/lint_core.h) against the planted
// fixtures in tests/lint_fixtures/.
//
// Fixtures mark every expected finding with a `LINT-EXPECT: <rule>` comment
// on the violating line; each test loads a fixture under a virtual repo
// path (scoping keys off the path the SourceFile carries, not where the
// fixture sits on disk) and requires the findings to match the markers
// exactly — same lines, same rules, nothing extra.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint_core.h"

namespace vq::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string{VQ_LINT_FIXTURE_DIR} + "/" + name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

SourceFile fixture(const std::string& name, std::string virtual_path) {
  return SourceFile{std::move(virtual_path), read_fixture(name)};
}

/// (line, rule) pairs harvested from LINT-EXPECT markers.
std::vector<std::pair<std::size_t, std::string>> expectations(
    const std::string& content) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::istringstream in{content};
  std::string text;
  for (std::size_t line = 1; std::getline(in, text); ++line) {
    const std::size_t tag = text.find("LINT-EXPECT:");
    if (tag == std::string::npos) continue;
    std::string rule = text.substr(tag + 12);
    rule.erase(0, rule.find_first_not_of(' '));
    rule.erase(rule.find_last_not_of(' ') + 1);
    out.emplace_back(line, rule);
  }
  return out;
}

/// Lints `files` and requires findings == the union of every file's
/// LINT-EXPECT markers.
void expect_exact(const std::vector<SourceFile>& files) {
  std::vector<std::pair<std::string, std::pair<std::size_t, std::string>>>
      expected;
  for (const SourceFile& f : files) {
    for (const auto& e : expectations(f.content)) {
      expected.emplace_back(f.path, e);
    }
  }
  const std::vector<Finding> findings = run_lint(files);
  std::vector<std::pair<std::string, std::pair<std::size_t, std::string>>>
      actual;
  for (const Finding& f : findings) {
    actual.emplace_back(f.path, std::make_pair(f.line, f.rule));
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected) << [&] {
    std::ostringstream msg;
    for (const Finding& f : findings) msg << format_finding(f) << "\n";
    return msg.str();
  }();
}

TEST(Lint, RuleTableListsAllFiveRules) {
  const std::vector<RuleInfo>& table = rules();
  ASSERT_EQ(table.size(), 5u);
  const std::vector<std::string> names = {
      "unordered-iter", "wall-clock", "naked-thread", "io-in-core",
      "positioned-throw"};
  for (const std::string& name : names) {
    EXPECT_TRUE(std::any_of(table.begin(), table.end(),
                            [&](const RuleInfo& r) { return r.name == name; }))
        << name;
  }
}

TEST(Lint, FormatFinding) {
  const Finding f{"src/core/x.cpp", 12, "wall-clock", "call to 'rand'"};
  EXPECT_EQ(format_finding(f),
            "src/core/x.cpp:12: [wall-clock] call to 'rand'");
}

TEST(Lint, FlagsUnsortedUnorderedIteration) {
  expect_exact({fixture("unordered_bad.cpp", "src/core/unordered_bad.cpp")});
}

TEST(Lint, SortWithinWindowIsClean) {
  expect_exact({fixture("unordered_good.cpp", "src/core/unordered_good.cpp")});
}

TEST(Lint, ResolvesUnorderedTypeAcrossFiles) {
  // The FlatMap64 member is declared in the header; the for_each lives in
  // the .cpp.  Linted together, the registry must connect them.
  expect_exact({fixture("registry_decl.h", "src/core/registry_decl.h"),
                fixture("registry_use.cpp", "src/core/registry_use.cpp")});
}

TEST(Lint, FlagsWallClockSources) {
  expect_exact({fixture("wall_clock_bad.cpp", "src/core/wall_clock_bad.cpp")});
}

TEST(Lint, WallClockExemptInUtilRng) {
  // Identical content is clean when it *is* the sanctioned RNG component.
  SourceFile f = fixture("wall_clock_bad.cpp", "src/util/rng.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, WallClockExemptInObs) {
  // src/obs owns timing (Stopwatch/VQ_SPAN); clock reads there are the
  // carve-out, not a violation.
  SourceFile f = fixture("obs_clock.cpp", "src/obs/trace.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, WallClockObsCarveOutIsSegmentAnchored) {
  // "src/observability" shares the "src/obs" prefix but is a different
  // directory — the carve-out must not leak to it.
  expect_exact({fixture("obs_clock.cpp", "src/observability/clock.cpp")});
}

TEST(Lint, WallClockStillFiresNextToObs) {
  // A file in core that merely *calls into* obs gets no exemption.
  expect_exact({fixture("obs_clock.cpp", "src/core/timing.cpp")});
}

TEST(Lint, WallClockExemptInServe) {
  // src/serve owns socket deadlines: idle/read timeouts are wall-clock by
  // nature and never feed the analysis.
  SourceFile f = fixture("wall_clock_bad.cpp", "src/serve/server.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, WallClockServeCarveOutIsSegmentAnchored) {
  // "src/server" shares the "src/serve" prefix but is a different
  // directory — the carve-out must not leak to it.
  expect_exact({fixture("wall_clock_bad.cpp", "src/server/clock.cpp")});
}

TEST(Lint, FlagsNakedThreads) {
  expect_exact(
      {fixture("naked_thread_bad.cpp", "src/core/naked_thread_bad.cpp")});
}

TEST(Lint, NakedThreadExemptInThreadPool) {
  SourceFile f = fixture("naked_thread_bad.cpp", "src/util/thread_pool.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, NakedThreadExemptInServeServerOnly) {
  // The acceptor/IO thread in serve/server.cpp is a poll loop with its own
  // lifecycle, not ThreadPool work; only that one file is exempt.
  SourceFile exempt =
      fixture("naked_thread_bad.cpp", "src/serve/server.cpp");
  EXPECT_TRUE(run_lint({exempt}).empty());
  expect_exact(
      {fixture("naked_thread_bad.cpp", "src/serve/producer.cpp")});
}

TEST(Lint, FlagsConsoleIoOnlyInAnalysisLayers) {
  expect_exact({fixture("io_in_core_bad.cpp", "src/core/io_in_core_bad.cpp")});
  // The same writes are fine from the generator layer or tools.
  EXPECT_TRUE(run_lint({fixture("io_in_core_bad.cpp",
                                "src/gen/io_elsewhere.cpp")})
                  .empty());
  EXPECT_TRUE(
      run_lint({fixture("io_in_core_bad.cpp", "tools/io_tool.cpp")}).empty());
}

TEST(Lint, FlagsPositionFreeThrowsOnlyInGen) {
  expect_exact(
      {fixture("positioned_throw.cpp", "src/gen/positioned_throw.cpp")});
  EXPECT_TRUE(run_lint({fixture("positioned_throw.cpp",
                                "src/core/positioned_throw.cpp")})
                  .empty());
}

TEST(Lint, LineSuppressionsSilenceFindings) {
  expect_exact({fixture("suppressed.cpp", "src/core/suppressed.cpp")});
}

TEST(Lint, FileWideSuppressionListSilencesFindings) {
  expect_exact(
      {fixture("suppressed_file.cpp", "src/core/suppressed_file.cpp")});
}

TEST(Lint, LiteralsAndCommentsNeverFire) {
  expect_exact(
      {fixture("tricky_literals.cpp", "src/core/tricky_literals.cpp")});
}

TEST(Lint, OutsideScopePathsAreIgnored) {
  // Everything under tests/ (or any unscoped path) is out of bounds for
  // every rule except naked-thread; unordered iteration there is fine.
  EXPECT_TRUE(
      run_lint({fixture("unordered_bad.cpp", "tests/unordered_bad.cpp")})
          .empty());
}

TEST(Lint, FindingsAreSortedByPathAndLine) {
  const std::vector<SourceFile> files = {
      fixture("wall_clock_bad.cpp", "src/core/b.cpp"),
      fixture("io_in_core_bad.cpp", "src/core/a.cpp")};
  const std::vector<Finding> findings = run_lint(files);
  ASSERT_GE(findings.size(), 2u);
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& x, const Finding& y) {
                               return std::tie(x.path, x.line) <=
                                      std::tie(y.path, y.line);
                             }));
}

}  // namespace
}  // namespace vq::lint
