// Tests for the vidqual_lint engine (tools/lint_core.h) against the planted
// fixtures in tests/lint_fixtures/.
//
// Fixtures mark every expected finding with a `LINT-EXPECT: <rule>` comment
// on the violating line; each test loads a fixture under a virtual repo
// path (scoping keys off the path the SourceFile carries, not where the
// fixture sits on disk) and requires the findings to match the markers
// exactly — same lines, same rules, nothing extra.  Rules that need
// configuration (hot-path manifests, the wire-contract manifest) get it
// through the LintConfig overload; the manifests live in the tests so a
// fixture change and its expectations stay in one review.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint_core.h"

namespace vq::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string{VQ_LINT_FIXTURE_DIR} + "/" + name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

SourceFile fixture(const std::string& name, std::string virtual_path) {
  return SourceFile{std::move(virtual_path), read_fixture(name)};
}

/// (line, rule) pairs harvested from LINT-EXPECT markers.
std::vector<std::pair<std::size_t, std::string>> expectations(
    const std::string& content) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::istringstream in{content};
  std::string text;
  for (std::size_t line = 1; std::getline(in, text); ++line) {
    const std::size_t tag = text.find("LINT-EXPECT:");
    if (tag == std::string::npos) continue;
    std::string rule = text.substr(tag + 12);
    rule.erase(0, rule.find_first_not_of(' '));
    rule.erase(rule.find_last_not_of(' ') + 1);
    out.emplace_back(line, rule);
  }
  return out;
}

/// Lints `files` under `config` and requires findings == the union of
/// every file's LINT-EXPECT markers.
void expect_exact(const std::vector<SourceFile>& files,
                  const LintConfig& config) {
  std::vector<std::pair<std::string, std::pair<std::size_t, std::string>>>
      expected;
  for (const SourceFile& f : files) {
    for (const auto& e : expectations(f.content)) {
      expected.emplace_back(f.path, e);
    }
  }
  const std::vector<Finding> findings = run_lint(files, config);
  std::vector<std::pair<std::string, std::pair<std::size_t, std::string>>>
      actual;
  for (const Finding& f : findings) {
    actual.emplace_back(f.path, std::make_pair(f.line, f.rule));
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected) << [&] {
    std::ostringstream msg;
    for (const Finding& f : findings) msg << format_finding(f) << "\n";
    return msg.str();
  }();
}

void expect_exact(const std::vector<SourceFile>& files) {
  expect_exact(files, LintConfig{});
}

TEST(Lint, RuleTableListsAllEightRules) {
  const std::vector<RuleInfo>& table = rules();
  ASSERT_EQ(table.size(), 8u);
  const std::vector<std::string> names = {
      "unordered-iter", "wall-clock", "naked-thread",  "io-in-core",
      "positioned-throw", "raw-mutex", "hot-path",     "wire-contract"};
  for (const std::string& name : names) {
    EXPECT_TRUE(std::any_of(table.begin(), table.end(),
                            [&](const RuleInfo& r) { return r.name == name; }))
        << name;
  }
}

TEST(Lint, FormatFinding) {
  const Finding f{"src/core/x.cpp", 12, "wall-clock", "call to 'rand'"};
  EXPECT_EQ(format_finding(f),
            "src/core/x.cpp:12: [wall-clock] call to 'rand'");
}

TEST(Lint, FormatGithubAnnotation) {
  const Finding f{"src/core/x.cpp", 12, "wall-clock", "call to 'rand'"};
  EXPECT_EQ(format_github_annotation(f),
            "::error file=src/core/x.cpp,line=12::[wall-clock] call to "
            "'rand'");
}

// --- unordered-iter ----------------------------------------------------------

TEST(Lint, FlagsHashOrderReachingOutput) {
  // Appending to an ordered vector and accumulating a float both leak hash
  // order into the result.
  expect_exact({fixture("unordered_bad.cpp", "src/core/unordered_bad.cpp")});
}

TEST(Lint, SortedAppendAndIntAccumulationAreClean) {
  expect_exact({fixture("unordered_good.cpp", "src/core/unordered_good.cpp")});
}

TEST(Lint, ResolvesUnorderedTypeAcrossFiles) {
  // The FlatMap64 member is declared in the header; the for_each lives in
  // the .cpp.  Linted together, the registry must connect them.
  expect_exact({fixture("registry_decl.h", "src/core/registry_decl.h"),
                fixture("registry_use.cpp", "src/core/registry_use.cpp")});
}

// --- wall-clock --------------------------------------------------------------

TEST(Lint, FlagsWallClockSources) {
  expect_exact({fixture("wall_clock_bad.cpp", "src/core/wall_clock_bad.cpp")});
}

TEST(Lint, WallClockAppliesInTests) {
  // tests/ must be as reproducible as src/ — a clock in a test needs a
  // justified suppression (the socket chaos harness carries them).
  expect_exact(
      {fixture("wall_clock_bad.cpp", "tests/wall_clock_bad.cpp")});
}

TEST(Lint, WallClockExemptInUtilRng) {
  // Identical content is clean when it *is* the sanctioned RNG component.
  SourceFile f = fixture("wall_clock_bad.cpp", "src/util/rng.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, WallClockExemptInObs) {
  // src/obs owns timing (Stopwatch/VQ_SPAN); clock reads there are the
  // carve-out, not a violation.
  SourceFile f = fixture("obs_clock.cpp", "src/obs/trace.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, WallClockObsCarveOutIsSegmentAnchored) {
  // "src/observability" shares the "src/obs" prefix but is a different
  // directory — the carve-out must not leak to it.
  expect_exact({fixture("obs_clock.cpp", "src/observability/clock.cpp")});
}

TEST(Lint, WallClockStillFiresNextToObs) {
  // A file in core that merely *calls into* obs gets no exemption.
  expect_exact({fixture("obs_clock.cpp", "src/core/timing.cpp")});
}

TEST(Lint, WallClockExemptInServe) {
  // src/serve owns socket deadlines: idle/read timeouts are wall-clock by
  // nature and never feed the analysis.
  SourceFile f = fixture("wall_clock_bad.cpp", "src/serve/server.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, WallClockServeCarveOutIsSegmentAnchored) {
  // "src/server" shares the "src/serve" prefix but is a different
  // directory — the carve-out must not leak to it.
  expect_exact({fixture("wall_clock_bad.cpp", "src/server/clock.cpp")});
}

// --- naked-thread ------------------------------------------------------------

TEST(Lint, FlagsNakedThreads) {
  expect_exact(
      {fixture("naked_thread_bad.cpp", "src/core/naked_thread_bad.cpp")});
}

TEST(Lint, NakedThreadExemptInThreadPool) {
  SourceFile f = fixture("naked_thread_bad.cpp", "src/util/thread_pool.cpp");
  const std::vector<Finding> findings = run_lint({f});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, NakedThreadExemptInServeServerOnly) {
  // The acceptor/IO thread in serve/server.cpp is a poll loop with its own
  // lifecycle, not ThreadPool work; only that one file is exempt.
  SourceFile exempt =
      fixture("naked_thread_bad.cpp", "src/serve/server.cpp");
  EXPECT_TRUE(run_lint({exempt}).empty());
  expect_exact(
      {fixture("naked_thread_bad.cpp", "src/serve/producer.cpp")});
}

// --- io-in-core / positioned-throw -------------------------------------------

TEST(Lint, FlagsConsoleIoOnlyInAnalysisLayers) {
  expect_exact({fixture("io_in_core_bad.cpp", "src/core/io_in_core_bad.cpp")});
  // The same writes are fine from the generator layer or tools.
  EXPECT_TRUE(run_lint({fixture("io_in_core_bad.cpp",
                                "src/gen/io_elsewhere.cpp")})
                  .empty());
  EXPECT_TRUE(
      run_lint({fixture("io_in_core_bad.cpp", "tools/io_tool.cpp")}).empty());
}

TEST(Lint, FlagsPositionFreeThrowsOnlyInGen) {
  expect_exact(
      {fixture("positioned_throw.cpp", "src/gen/positioned_throw.cpp")});
  EXPECT_TRUE(run_lint({fixture("positioned_throw.cpp",
                                "src/core/positioned_throw.cpp")})
                  .empty());
}

// --- raw-mutex ---------------------------------------------------------------

TEST(Lint, FlagsRawMutexPrimitives) {
  expect_exact({fixture("raw_mutex_bad.cpp", "src/core/raw_mutex_bad.cpp")});
}

TEST(Lint, RawMutexAppliesInTests) {
  expect_exact({fixture("raw_mutex_bad.cpp", "tests/raw_mutex_bad.cpp")});
}

TEST(Lint, RawMutexExemptInMutexHeader) {
  // src/util/mutex.h is the single sanctioned site: it *is* the wrapper
  // the rule points everyone else at.
  SourceFile f = fixture("raw_mutex_bad.cpp", "src/util/mutex.h");
  EXPECT_TRUE(run_lint({f}).empty());
}

// --- hot-path ----------------------------------------------------------------

TEST(Lint, HotMarkerFlagsNextFunctionOnly) {
  // `// vq:hot` marks hot_kernel; cold_sibling below it allocates a
  // std::string freely.  No manifest needed — markers are in-source.
  expect_exact({fixture("hot_marker.cpp", "src/core/hot_marker.cpp")});
}

TEST(Lint, HotManifestNamesFunctionAndNamespace) {
  LintConfig config;
  config.hot_paths_text =
      "function vq::fold_rows\n"
      "namespace vq::serve\n";
  expect_exact({fixture("hot_manifest.cpp", "src/gen/hot_kernels.cpp")},
               config);
}

TEST(Lint, HotManifestUnconfiguredIsClean) {
  // The same file without a manifest has no hot functions.
  SourceFile f = fixture("hot_manifest.cpp", "src/gen/hot_kernels.cpp");
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(Lint, HotManifestParseErrorsSurface) {
  LintConfig config;
  config.hot_paths_text = "kernel vq::fold_rows\n";
  const std::vector<Finding> findings = run_lint({}, config);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "tools/hot_paths.txt");
  EXPECT_EQ(findings[0].rule, "hot-path");
  EXPECT_NE(findings[0].message.find("unknown entry kind"),
            std::string::npos);
}

// --- wire-contract -----------------------------------------------------------

constexpr std::string_view kDemoManifest = R"json({
  "contracts": [
    {"name": "demo-magic", "kind": "magic", "value": "VQXX",
     "constant": "kDemoMagic", "header": "src/gen/wire_format.h",
     "writers": ["src/gen/wire_writer.cpp"],
     "readers": ["src/gen/wire_reader.cpp"]},
    {"name": "demo-version", "kind": "number", "value": 3,
     "constant": "kDemoVersion", "header": "src/gen/wire_format.h",
     "writers": ["src/gen/wire_writer.cpp"],
     "readers": ["src/gen/wire_reader.cpp"]}
  ]
})json";

LintConfig demo_wire_config() {
  LintConfig config;
  config.wire_manifest_json = std::string{kDemoManifest};
  config.wire_manifest_path = "docs/wire_contracts.json";
  return config;
}

std::vector<SourceFile> demo_wire_files() {
  return {fixture("wire_format.h", "src/gen/wire_format.h"),
          fixture("wire_writer.cpp", "src/gen/wire_writer.cpp"),
          fixture("wire_reader.cpp", "src/gen/wire_reader.cpp")};
}

TEST(Lint, WireContractCleanWhenPinnedAndShared) {
  EXPECT_TRUE(run_lint(demo_wire_files(), demo_wire_config()).empty());
}

TEST(Lint, WireContractFlagsOneSidedVersionBump) {
  // The acceptance scenario: the header bumps the version but the manifest
  // (and therefore the recorded contract) still says 3 — the pin check
  // must fail so the bump cannot land one-sided.
  std::vector<SourceFile> files = demo_wire_files();
  const std::size_t at = files[0].content.find("= 3;");
  ASSERT_NE(at, std::string::npos);
  files[0].content.replace(at, 4, "= 4;");
  const std::vector<Finding> findings =
      run_lint(files, demo_wire_config());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/gen/wire_format.h");
  EXPECT_EQ(findings[0].rule, "wire-contract");
  EXPECT_NE(findings[0].message.find("not pinned to 3"), std::string::npos);
}

TEST(Lint, WireContractFlagsOneSidedMagicChange) {
  // Same scenario for a magic: the header re-spells the bytes, the
  // manifest still records VQXX.
  std::vector<SourceFile> files = demo_wire_files();
  const std::size_t at = files[0].content.find("'X', 'X'");
  ASSERT_NE(at, std::string::npos);
  files[0].content.replace(at, 8, "'Y', 'Y'");
  const std::vector<Finding> findings =
      run_lint(files, demo_wire_config());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/gen/wire_format.h");
  EXPECT_NE(findings[0].message.find("not pinned to \"VQXX\""),
            std::string::npos);
}

TEST(Lint, WireContractFlagsStaleReader) {
  // A reader that hard-codes the version instead of referencing the
  // constant would silently keep accepting the old format after a bump.
  std::vector<SourceFile> files = {
      fixture("wire_format.h", "src/gen/wire_format.h"),
      fixture("wire_writer.cpp", "src/gen/wire_writer.cpp"),
      fixture("wire_reader_stale.cpp", "src/gen/wire_reader.cpp")};
  expect_exact(files, demo_wire_config());
}

TEST(Lint, WireContractBumpRecipeCatchesUnbumpedReader) {
  // The full version-bump recipe (the one kCheckpointVersion 1 -> 2
  // followed): manifest bumped, header pinned to the new value, writer on
  // the constant — but the reader still hard-codes acceptance of the old
  // version.  The stale-reader rule is what keeps the recipe two-sided.
  LintConfig config = demo_wire_config();
  const std::size_t manifest_at = config.wire_manifest_json.find("\"value\": 3");
  ASSERT_NE(manifest_at, std::string::npos);
  config.wire_manifest_json.replace(manifest_at, 10, "\"value\": 4");
  std::vector<SourceFile> files = {
      fixture("wire_format.h", "src/gen/wire_format.h"),
      fixture("wire_writer.cpp", "src/gen/wire_writer.cpp"),
      fixture("wire_reader_stale.cpp", "src/gen/wire_reader.cpp")};
  const std::size_t header_at = files[0].content.find("= 3;");
  ASSERT_NE(header_at, std::string::npos);
  files[0].content.replace(header_at, 4, "= 4;");
  expect_exact(files, config);
}

TEST(Lint, WireContractFlagsRogueMagicLiteral) {
  // The magic spelled in a file outside the declared writer/reader/site
  // set — as a string or as a comma-separated char run — is a finding.
  std::vector<SourceFile> files = demo_wire_files();
  files.push_back(fixture("wire_rogue.cpp", "src/core/wire_rogue.cpp"));
  expect_exact(files, demo_wire_config());
}

TEST(Lint, WireContractReportsManifestProblems) {
  // Unparseable JSON and files missing from the lint set both surface as
  // findings pinned to the manifest itself.
  LintConfig bad = demo_wire_config();
  bad.wire_manifest_json = "{ not json";
  std::vector<Finding> findings = run_lint({}, bad);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].path, "docs/wire_contracts.json");
  EXPECT_EQ(findings[0].rule, "wire-contract");

  // Valid manifest, but the named header/writer/reader files are absent
  // from the linted set (e.g. a path typo in the manifest).
  findings = run_lint({}, demo_wire_config());
  EXPECT_EQ(findings.size(), 6u);  // header+writer+reader per contract
  for (const Finding& f : findings) {
    EXPECT_EQ(f.path, "docs/wire_contracts.json");
    EXPECT_NE(f.message.find("not in the linted file set"),
              std::string::npos);
  }
}

// --- suppressions, literals, scoping -----------------------------------------

TEST(Lint, LineSuppressionsSilenceFindings) {
  expect_exact({fixture("suppressed.cpp", "src/core/suppressed.cpp")});
}

TEST(Lint, FileWideSuppressionListSilencesFindings) {
  expect_exact(
      {fixture("suppressed_file.cpp", "src/core/suppressed_file.cpp")});
}

TEST(Lint, LiteralsCommentsAndPreprocessorNeverFire) {
  expect_exact(
      {fixture("tricky_literals.cpp", "src/core/tricky_literals.cpp")});
}

TEST(Lint, OutsideScopePathsAreIgnored) {
  // unordered-iter is scoped to src/ — the same hash-order flows under
  // tests/ (or any unscoped path) are out of bounds.
  EXPECT_TRUE(
      run_lint({fixture("unordered_bad.cpp", "tests/unordered_bad.cpp")})
          .empty());
}

TEST(Lint, FindingsAreSortedByPathAndLine) {
  const std::vector<SourceFile> files = {
      fixture("wall_clock_bad.cpp", "src/core/b.cpp"),
      fixture("io_in_core_bad.cpp", "src/core/a.cpp")};
  const std::vector<Finding> findings = run_lint(files);
  ASSERT_GE(findings.size(), 2u);
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& x, const Finding& y) {
                               return std::tie(x.path, x.line) <=
                                      std::tie(y.path, y.line);
                             }));
}

}  // namespace
}  // namespace vq::lint
