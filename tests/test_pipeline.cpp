// Integration tests: the full pipeline over generated traces, checking
// cross-module consistency invariants.

#include "src/core/pipeline.h"

#include <gtest/gtest.h>

#include "src/core/prevalence.h"
#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

struct GeneratedFixture : ::testing::Test {
  GeneratedFixture() {
    WorldConfig world_config;
    world_config.num_sites = 50;
    world_config.num_cdns = 8;
    world_config.num_asns = 120;
    world = World::build(world_config);

    EventScheduleConfig event_config;
    event_config.num_epochs = 8;
    event_config.events_per_epoch = 2.0;
    events = EventSchedule::generate(world, event_config);

    TraceConfig trace_config;
    trace_config.num_epochs = 8;
    trace_config.sessions_per_epoch = 1'500;
    trace = generate_trace(world, events, trace_config);

    config.cluster_params.min_sessions = 40;
    result = run_pipeline(trace, config);
  }

  World world = World::build(WorldConfig{.num_sites = 1, .num_cdns = 1,
                                         .num_asns = 1});
  EventSchedule events = EventSchedule::none(0);
  SessionTable trace;
  PipelineConfig config;
  PipelineResult result;
};

TEST_F(GeneratedFixture, EpochAccountingIsConsistent) {
  ASSERT_EQ(result.num_epochs, 8u);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const CriticalAnalysis& a = result.at(m, e).analysis;
      EXPECT_EQ(a.epoch, e);
      EXPECT_EQ(a.metric, m);
      EXPECT_EQ(a.sessions, trace.epoch(e).size());
      // Problem sessions counted two ways must agree.
      std::uint64_t manual = 0;
      for (const Session& s : trace.epoch(e)) {
        if (config.thresholds.is_problem(m, s.quality)) ++manual;
      }
      EXPECT_EQ(a.problem_sessions, manual);
    }
  }
}

TEST_F(GeneratedFixture, CoverageChainInequalityHolds) {
  // attributed mass <= problem sessions in problem clusters <= problem
  // sessions, for every epoch and metric.
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const CriticalAnalysis& a = result.at(m, e).analysis;
      EXPECT_LE(a.attributed_mass,
                static_cast<double>(a.problem_sessions_in_pc) + 1e-6);
      EXPECT_LE(a.problem_sessions_in_pc, a.problem_sessions);
      EXPECT_LE(a.criticals.size(),
                static_cast<std::size_t>(a.num_problem_clusters));
    }
  }
}

TEST_F(GeneratedFixture, EveryCriticalClusterIsAProblemCluster) {
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& analysis = result.at(m, e).analysis;
      const auto& pc_keys = analysis.problem_cluster_keys;
      EXPECT_TRUE(std::is_sorted(pc_keys.begin(), pc_keys.end()));
      EXPECT_EQ(pc_keys.size(), analysis.num_problem_clusters);
      for (const CriticalRecord& c : analysis.criticals) {
        EXPECT_TRUE(std::binary_search(pc_keys.begin(), pc_keys.end(),
                                       c.key.raw()))
            << "critical cluster not in problem-cluster set";
        // Stats satisfy the flagging conditions.
        EXPECT_GE(c.stats.sessions, config.cluster_params.min_sessions);
        EXPECT_GE(c.stats.problem_ratio(m),
                  config.cluster_params.ratio_multiplier *
                      analysis.global_ratio -
                      1e-12);
      }
    }
  }
}

TEST_F(GeneratedFixture, AggregatesAreMeansOfEpochValues) {
  const auto agg = result.aggregates(Metric::kBufRatio);
  double mean_pc = 0.0;
  for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
    mean_pc += result.at(Metric::kBufRatio, e).analysis.num_problem_clusters;
  }
  mean_pc /= result.num_epochs;
  EXPECT_NEAR(agg.mean_problem_clusters, mean_pc, 1e-9);
  EXPECT_GE(agg.mean_problem_coverage, agg.mean_critical_coverage - 1e-9);
  EXPECT_LE(agg.mean_problem_coverage, 1.0);
}

TEST_F(GeneratedFixture, TotalProblemSessionsRangeQueries) {
  const auto whole =
      result.total_problem_sessions(Metric::kJoinFailure, 0, 8);
  const auto first_half =
      result.total_problem_sessions(Metric::kJoinFailure, 0, 4);
  const auto second_half =
      result.total_problem_sessions(Metric::kJoinFailure, 4, 8);
  EXPECT_EQ(whole, first_half + second_half);
  EXPECT_EQ(result.total_problem_sessions(Metric::kJoinFailure, 8, 99), 0u);
}

TEST_F(GeneratedFixture, ParallelPipelineMatchesSerial) {
  PipelineConfig parallel_config = config;
  parallel_config.workers = 4;
  const PipelineResult parallel = run_pipeline(trace, parallel_config);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& a = result.at(m, e).analysis;
      const auto& b = parallel.at(m, e).analysis;
      EXPECT_EQ(a.problem_sessions, b.problem_sessions);
      EXPECT_EQ(a.num_problem_clusters, b.num_problem_clusters);
      ASSERT_EQ(a.criticals.size(), b.criticals.size());
      for (std::size_t i = 0; i < a.criticals.size(); ++i) {
        EXPECT_EQ(a.criticals[i].key, b.criticals[i].key);
        EXPECT_DOUBLE_EQ(a.criticals[i].attributed,
                         b.criticals[i].attributed);
      }
    }
  }
}

TEST_F(GeneratedFixture, ShardedExpansionMatchesSerial) {
  // Force intra-epoch sharding (workers > epochs would also trigger it via
  // the heuristic; pin it explicitly so the test exercises the knob).
  PipelineConfig sharded_config = config;
  sharded_config.workers = 4;
  sharded_config.shards = 4;
  const PipelineResult sharded = run_pipeline(trace, sharded_config);
  PipelineConfig unfolded_config = config;
  unfolded_config.engine.fold_leaves = false;
  const PipelineResult unfolded = run_pipeline(trace, unfolded_config);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& a = result.at(m, e);
      for (const auto* other : {&sharded.at(m, e), &unfolded.at(m, e)}) {
        EXPECT_EQ(a.analysis.problem_sessions, other->analysis.problem_sessions);
        EXPECT_EQ(a.analysis.problem_cluster_keys,
                  other->analysis.problem_cluster_keys);
        ASSERT_EQ(a.analysis.criticals.size(), other->analysis.criticals.size());
        for (std::size_t i = 0; i < a.analysis.criticals.size(); ++i) {
          EXPECT_EQ(a.analysis.criticals[i].key,
                    other->analysis.criticals[i].key);
        }
      }
    }
  }
}

TEST(Pipeline, EmptyTable) {
  const PipelineResult result = run_pipeline(SessionTable{}, {});
  EXPECT_EQ(result.num_epochs, 0u);
  for (const Metric m : kAllMetrics) {
    EXPECT_EQ(result.aggregates(m).mean_problem_clusters, 0.0);
  }
}

TEST(Pipeline, ArityCappedEngineFindsCoarseCauses) {
  // With max_arity = 1 only single-attribute clusters exist; a bad CDN is
  // still detected.
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 1},
                     test::bad_buffering(), 60);
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 2},
                     test::good_quality(), 40);
  test::add_sessions(sessions, 0, Attrs{.cdn = 2, .asn = 3},
                     test::good_quality(), 900);
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  config.engine.max_arity = 1;
  const PipelineResult result = run_pipeline(SessionTable{sessions}, config);
  const auto& criticals = result.at(Metric::kBufRatio, 0).analysis.criticals;
  ASSERT_FALSE(criticals.empty());
  for (const auto& c : criticals) EXPECT_EQ(c.key.arity(), 1);
}

}  // namespace
}  // namespace vq
