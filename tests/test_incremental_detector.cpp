// StreamingDetector with the incremental lattice (MonitorConfig::incremental):
// event-stream equivalence against the rebuild-every-epoch detector,
// checkpoint resume mid-stream (the lattice is deliberately not serialised —
// the first post-restore epoch rebuilds it as one big delta), and the rolling
// prevalence/persistence streak registry against the batch build_prevalence
// analytics.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/monitor.h"
#include "src/core/pipeline.h"
#include "src/core/prevalence.h"
#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

MonitorConfig detector_config(bool incremental) {
  MonitorConfig config;
  config.cluster_params.min_sessions = 50;
  config.escalate_after = 1;
  config.incremental = incremental;
  return config;
}

/// A churny scripted epoch: one CDN goes bad on flagged epochs, a second
/// rotating ASN block keeps leaves arriving and retiring.
std::vector<Session> scripted_epoch(std::uint32_t epoch, bool cdn_bad) {
  std::vector<Session> sessions;
  for (std::uint16_t asn = 1; asn <= 4; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       cdn_bad ? test::bad_buffering() : test::good_quality(),
                       15);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       test::good_quality(), 10);
  }
  // The rotating block: a different ASN range each epoch, so every epoch
  // both adds and retires leaves under the incremental engine.
  const auto base = static_cast<std::uint16_t>(10 + 6 * (epoch % 3));
  for (std::uint16_t asn = base; asn < base + 6; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::bad_buffering(), 2);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::good_quality(), 48);
  }
  return sessions;
}

std::string fmt(const std::vector<IncidentEvent>& events) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const IncidentEvent& e : events) {
    out << incident_update_name(e.update) << " epoch=" << e.epoch
        << " metric=" << static_cast<int>(e.incident.metric)
        << " key=" << e.incident.key.raw()
        << " first=" << e.incident.first_epoch
        << " streak=" << e.incident.streak
        << " escalated=" << e.incident.escalated
        << " attributed=" << e.incident.attributed
        << " sessions=" << e.incident.stats.sessions << "\n";
  }
  return out.str();
}

constexpr bool kScript[] = {true, true, false, true,
                            true, false, false, true};
constexpr std::uint32_t kEpochs = 8;

void expect_streaks_equal(const StreamingDetector& a,
                          const StreamingDetector& b) {
  EXPECT_EQ(a.epochs_observed(), b.epochs_observed());
  for (const Metric m : kAllMetrics) {
    const auto lhs = a.problem_streaks(m);
    const auto rhs = b.problem_streaks(m);
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].key.raw(), rhs[i].key.raw());
      EXPECT_EQ(lhs[i].first_epoch, rhs[i].first_epoch);
      EXPECT_EQ(lhs[i].last_epoch, rhs[i].last_epoch);
      EXPECT_EQ(lhs[i].epochs_seen, rhs[i].epochs_seen);
      EXPECT_EQ(lhs[i].streak, rhs[i].streak);
      EXPECT_EQ(lhs[i].max_streak, rhs[i].max_streak);
      EXPECT_EQ(lhs[i].prevalence, rhs[i].prevalence);
    }
  }
}

TEST(IncrementalDetector, EventStreamMatchesRebuildDetector) {
  StreamingDetector rebuild{detector_config(false)};
  StreamingDetector incremental{detector_config(true)};
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    const std::vector<Session> sessions = scripted_epoch(e, kScript[e]);
    EXPECT_EQ(fmt(incremental.ingest(sessions, e)),
              fmt(rebuild.ingest(sessions, e)))
        << "diverged at epoch " << e;
  }
  for (const Metric m : kAllMetrics) {
    EXPECT_EQ(incremental.total_opened(m), rebuild.total_opened(m));
  }
  expect_streaks_equal(incremental, rebuild);
}

TEST(IncrementalDetector, GeneratedTraceEventStreamMatchesRebuild) {
  WorldConfig world_config;
  world_config.num_sites = 10;
  world_config.num_cdns = 3;
  world_config.num_asns = 20;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 10;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 10;
  trace_config.sessions_per_epoch = 8000;

  MonitorConfig config = detector_config(false);
  config.cluster_params.min_sessions = 60;
  config.workers = 4;
  config.shards = 4;
  MonitorConfig inc_config = config;
  inc_config.incremental = true;
  StreamingDetector rebuild{config};
  StreamingDetector incremental{inc_config};
  for (std::uint32_t e = 0; e < trace_config.num_epochs; ++e) {
    const std::vector<Session> sessions =
        generate_epoch(world, events, trace_config, e);
    EXPECT_EQ(fmt(incremental.ingest(sessions, e)),
              fmt(rebuild.ingest(sessions, e)))
        << "diverged at epoch " << e;
  }
  expect_streaks_equal(incremental, rebuild);
}

TEST(IncrementalDetector, CheckpointResumeReproducesIdenticalEventSequence) {
  // The lattice carries no checkpoint bytes by design: advance() lands on
  // the current fold's exact content from any prior state, so the first
  // post-restore epoch is one full-delta build with identical output.
  const MonitorConfig config = detector_config(true);
  StreamingDetector uninterrupted{config};
  std::string baseline;
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    baseline += fmt(uninterrupted.ingest(scripted_epoch(e, kScript[e]), e));
  }

  for (std::uint32_t cut = 1; cut < kEpochs; ++cut) {
    StreamingDetector first{config};
    std::string replay;
    for (std::uint32_t e = 0; e < cut; ++e) {
      replay += fmt(first.ingest(scripted_epoch(e, kScript[e]), e));
    }
    std::stringstream checkpoint{std::ios::in | std::ios::out |
                                 std::ios::binary};
    first.save_checkpoint(checkpoint);

    StreamingDetector resumed{config};
    resumed.load_checkpoint(checkpoint);
    for (std::uint32_t e = cut; e < kEpochs; ++e) {
      replay += fmt(resumed.ingest(scripted_epoch(e, kScript[e]), e));
    }
    EXPECT_EQ(replay, baseline) << "killed at epoch boundary " << cut;
    expect_streaks_equal(resumed, uninterrupted);
  }
}

TEST(IncrementalDetector, RestoreIntoOppositeEngineStaysIdentical) {
  // Checkpoints are engine-agnostic (config fingerprint excludes
  // `incremental`): a rebuild-mode checkpoint restored into an incremental
  // detector — and vice versa — continues the identical event stream.
  constexpr std::uint32_t kCut = 4;
  StreamingDetector uninterrupted{detector_config(false)};
  std::string baseline;
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    baseline += fmt(uninterrupted.ingest(scripted_epoch(e, kScript[e]), e));
  }
  for (const bool first_incremental : {false, true}) {
    StreamingDetector first{detector_config(first_incremental)};
    std::string replay;
    for (std::uint32_t e = 0; e < kCut; ++e) {
      replay += fmt(first.ingest(scripted_epoch(e, kScript[e]), e));
    }
    std::stringstream checkpoint{std::ios::in | std::ios::out |
                                 std::ios::binary};
    first.save_checkpoint(checkpoint);
    StreamingDetector resumed{detector_config(!first_incremental)};
    resumed.load_checkpoint(checkpoint);
    for (std::uint32_t e = kCut; e < kEpochs; ++e) {
      replay += fmt(resumed.ingest(scripted_epoch(e, kScript[e]), e));
    }
    EXPECT_EQ(replay, baseline)
        << "restore " << (first_incremental ? "inc->rebuild" : "rebuild->inc");
  }
}

TEST(IncrementalCheckpoint, V2RoundTripsStreakRegistry) {
  const MonitorConfig config = detector_config(true);
  StreamingDetector detector{config};
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    (void)detector.ingest(scripted_epoch(e, kScript[e]), e);
  }
  std::stringstream checkpoint{std::ios::in | std::ios::out |
                               std::ios::binary};
  detector.save_checkpoint(checkpoint);
  StreamingDetector restored{config};
  restored.load_checkpoint(checkpoint);

  EXPECT_EQ(restored.epochs_observed(), kEpochs);
  expect_streaks_equal(restored, detector);
  // The registry is non-trivial on this script (flagged epochs with gaps).
  bool any = false;
  for (const Metric m : kAllMetrics) {
    any = any || !detector.problem_streaks(m).empty();
  }
  EXPECT_TRUE(any);
}

TEST(IncrementalStreaks, MatchBatchPrevalenceAnalytics) {
  // The rolling streak registry must agree with the offline §4.1 analytics:
  // epochs_seen/prevalence with build_prevalence's timeline, max_streak
  // with max_persistence, first/last epoch with the timeline endpoints.
  WorldConfig world_config;
  world_config.num_sites = 10;
  world_config.num_cdns = 3;
  world_config.num_asns = 20;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 12;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 12;
  trace_config.sessions_per_epoch = 8000;
  const SessionTable trace = generate_trace(world, events, trace_config);

  PipelineConfig pipeline_config;
  pipeline_config.cluster_params.min_sessions = 60;
  const PipelineResult result = run_pipeline(trace, pipeline_config);

  MonitorConfig config = detector_config(true);
  config.cluster_params.min_sessions = 60;
  StreamingDetector detector{config};
  for (std::uint32_t e = 0; e < trace.num_epochs(); ++e) {
    (void)detector.ingest(trace.epoch(e), e);
  }
  EXPECT_EQ(detector.epochs_observed(), trace.num_epochs());

  for (const Metric m : kAllMetrics) {
    const PrevalenceReport report = build_prevalence(
        problem_cluster_keys(result, m), trace.num_epochs());
    const std::vector<ProblemStreak> streaks = detector.problem_streaks(m);
    ASSERT_EQ(streaks.size(), report.timelines.size());
    // Both sides sorted by key: timelines come from per-epoch key lists.
    std::vector<const ClusterTimeline*> timelines;
    timelines.reserve(report.timelines.size());
    for (const ClusterTimeline& t : report.timelines) {
      timelines.push_back(&t);
    }
    std::sort(timelines.begin(), timelines.end(),
              [](const ClusterTimeline* a, const ClusterTimeline* b) {
                return a->key.raw() < b->key.raw();
              });
    for (std::size_t i = 0; i < streaks.size(); ++i) {
      const ProblemStreak& streak = streaks[i];
      const ClusterTimeline& timeline = *timelines[i];
      EXPECT_EQ(streak.key.raw(), timeline.key.raw());
      EXPECT_EQ(streak.epochs_seen, timeline.epochs.size());
      EXPECT_EQ(streak.first_epoch, timeline.epochs.front());
      EXPECT_EQ(streak.last_epoch, timeline.epochs.back());
      EXPECT_EQ(streak.max_streak, timeline.max_persistence);
      EXPECT_DOUBLE_EQ(streak.prevalence, timeline.prevalence);
    }
  }
}

}  // namespace
}  // namespace vq
