#include "src/core/cluster_engine.h"

#include <gtest/gtest.h>

#include <bit>
#include <stdexcept>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

TEST(LatticeMasks, FullLatticeHas127Cells) {
  const auto masks = lattice_masks(kNumDims);
  EXPECT_EQ(masks.size(), 127u);
}

TEST(LatticeMasks, ArityCapFiltersByPopcount) {
  const auto masks = lattice_masks(2);
  // C(7,1) + C(7,2) = 7 + 21.
  EXPECT_EQ(masks.size(), 28u);
  for (const auto mask : masks) EXPECT_LE(std::popcount(mask), 2);
}

TEST(LatticeMasks, RejectsBadArity) {
  EXPECT_THROW((void)lattice_masks(0), std::invalid_argument);
  EXPECT_THROW((void)lattice_masks(8), std::invalid_argument);
}

TEST(AggregateEpoch, RootCountsEverySession) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1}, test::good_quality(), 10);
  test::add_sessions(sessions, 0, Attrs{.site = 2}, test::bad_buffering(), 4);
  const auto table = aggregate_epoch(sessions, {}, {}, 0);

  EXPECT_EQ(table.root.sessions, 14u);
  EXPECT_EQ(table.root.problems[static_cast<int>(Metric::kBufRatio)], 4u);
  EXPECT_EQ(table.root.problems[static_cast<int>(Metric::kJoinFailure)], 0u);
  EXPECT_NEAR(table.global_ratio(Metric::kBufRatio), 4.0 / 14.0, 1e-12);
}

TEST(AggregateEpoch, PerClusterCountsAreExact) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1, .cdn = 1},
                     test::good_quality(), 6);
  test::add_sessions(sessions, 0, Attrs{.site = 1, .cdn = 2},
                     test::bad_bitrate(), 3);
  test::add_sessions(sessions, 0, Attrs{.site = 2, .cdn = 1},
                     test::bad_bitrate(), 2);
  const auto table = aggregate_epoch(sessions, {}, {}, 0);

  const auto stats_of = [&](std::uint8_t mask, const Attrs& attrs) {
    return table.stats(ClusterKey::pack(mask, attrs.vec()));
  };

  const auto site1 = stats_of(dim_bit(AttrDim::kSite), Attrs{.site = 1});
  EXPECT_EQ(site1.sessions, 9u);
  EXPECT_EQ(site1.problems[static_cast<int>(Metric::kBitrate)], 3u);

  const auto cdn1 = stats_of(dim_bit(AttrDim::kCdn), Attrs{.cdn = 1});
  EXPECT_EQ(cdn1.sessions, 8u);
  EXPECT_EQ(cdn1.problems[static_cast<int>(Metric::kBitrate)], 2u);

  const auto site1cdn2 = stats_of(
      dim_bit(AttrDim::kSite) | dim_bit(AttrDim::kCdn),
      Attrs{.site = 1, .cdn = 2});
  EXPECT_EQ(site1cdn2.sessions, 3u);
  EXPECT_EQ(site1cdn2.problems[static_cast<int>(Metric::kBitrate)], 3u);
}

TEST(AggregateEpoch, EverySessionLandsIn127Cells) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1, .cdn = 1, .asn = 1},
                     test::good_quality(), 1);
  const auto table = aggregate_epoch(sessions, {}, {}, 0);
  std::uint64_t total_cells = 0;
  std::uint64_t total_count = 0;
  table.clusters.for_each([&](std::uint64_t, const ClusterStats& stats) {
    ++total_cells;
    total_count += stats.sessions;
  });
  EXPECT_EQ(total_cells, 127u);
  EXPECT_EQ(total_count, 127u);
}

TEST(AggregateEpoch, SharedAttributesShareCells) {
  // Two sessions agreeing only on CDN: the CDN cell counts both, the
  // disjoint cells count one each.
  std::vector<Session> sessions;
  sessions.push_back(test::make_session(
      0, Attrs{.site = 1, .cdn = 9, .asn = 1}, test::good_quality()));
  sessions.push_back(test::make_session(
      0, Attrs{.site = 2, .cdn = 9, .asn = 2}, test::good_quality()));
  const auto table = aggregate_epoch(sessions, {}, {}, 0);
  const auto cdn = table.stats(
      ClusterKey::pack(dim_bit(AttrDim::kCdn), Attrs{.cdn = 9}.vec()));
  EXPECT_EQ(cdn.sessions, 2u);
  const auto site1 = table.stats(
      ClusterKey::pack(dim_bit(AttrDim::kSite), Attrs{.site = 1}.vec()));
  EXPECT_EQ(site1.sessions, 1u);
}

TEST(AggregateEpoch, ArityCapLimitsCellArity) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1, .cdn = 1},
                     test::good_quality(), 1);
  ClusterEngineConfig config;
  config.max_arity = 2;
  const auto table = aggregate_epoch(sessions, {}, config, 0);
  table.clusters.for_each([](std::uint64_t raw, const ClusterStats&) {
    EXPECT_LE(ClusterKey::from_raw(raw).arity(), 2);
  });
  EXPECT_EQ(table.clusters.size(), 28u);
}

TEST(AggregateEpoch, EpochMismatchThrows) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 3, Attrs{}, test::good_quality(), 1);
  EXPECT_THROW((void)aggregate_epoch(sessions, {}, {}, 0),
               std::invalid_argument);
}

TEST(AggregateEpoch, EmptyEpochYieldsEmptyTable) {
  const auto table = aggregate_epoch({}, {}, {}, 5);
  EXPECT_EQ(table.epoch, 5u);
  EXPECT_EQ(table.root.sessions, 0u);
  EXPECT_EQ(table.clusters.size(), 0u);
  EXPECT_EQ(table.global_ratio(Metric::kBufRatio), 0.0);
}

TEST(EpochClusterTable, StatsForUnknownClusterIsZero) {
  const auto table = aggregate_epoch({}, {}, {}, 0);
  const auto stats = table.stats(
      ClusterKey::pack(dim_bit(AttrDim::kSite), Attrs{.site = 7}.vec()));
  EXPECT_EQ(stats.sessions, 0u);
}

TEST(EpochClusterTable, RootKeyReturnsRootStats) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{}, test::good_quality(), 3);
  const auto table = aggregate_epoch(sessions, {}, {}, 0);
  EXPECT_EQ(table.stats(ClusterKey::root()).sessions, 3u);
}

TEST(ClusterStats, MinusIsSaturating) {
  ClusterStats a;
  a.sessions = 10;
  a.problems[0] = 4;
  ClusterStats b;
  b.sessions = 12;
  b.problems[0] = 1;
  const auto diff = a.minus(b);
  EXPECT_EQ(diff.sessions, 0u);  // saturates rather than wrapping
  EXPECT_EQ(diff.problems[0], 3u);
}

TEST(ClusterStats, PlusEqualsAccumulates) {
  ClusterStats a;
  a.sessions = 1;
  a.problems[2] = 1;
  ClusterStats b;
  b.sessions = 2;
  b.problems[2] = 2;
  a += b;
  EXPECT_EQ(a.sessions, 3u);
  EXPECT_EQ(a.problems[2], 3u);
}

TEST(ClusterStats, ProblemRatio) {
  ClusterStats s;
  EXPECT_EQ(s.problem_ratio(Metric::kBufRatio), 0.0);
  s.sessions = 8;
  s.problems[static_cast<int>(Metric::kJoinTime)] = 2;
  EXPECT_DOUBLE_EQ(s.problem_ratio(Metric::kJoinTime), 0.25);
}

}  // namespace
}  // namespace vq
