// Differential tests for the indexed critical-cluster extraction: on the
// same epoch table, the indexed strategy (flag bitsets + per-leaf cell-id
// gathers, serial and sharded) must reproduce the hashed baseline bit for
// bit — criticals (same order), attribution doubles, problem_cluster_keys,
// and problem_sessions_in_pc — at multiple arity caps and shard counts.

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>

#include "src/core/cluster_engine.h"
#include "src/core/critical_cluster.h"
#include "src/gen/tracegen.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace vq {
namespace {

/// Bit-exact equality of every analysis field, including doubles (the
/// strategies are required to share one floating-point accumulation order,
/// so EXPECT_EQ — not NEAR — is the contract).
void expect_analyses_identical(const CriticalAnalysis& expected,
                               const CriticalAnalysis& actual) {
  EXPECT_EQ(expected.epoch, actual.epoch);
  EXPECT_EQ(expected.metric, actual.metric);
  EXPECT_EQ(expected.sessions, actual.sessions);
  EXPECT_EQ(expected.problem_sessions, actual.problem_sessions);
  EXPECT_EQ(expected.problem_sessions_in_pc, actual.problem_sessions_in_pc);
  EXPECT_EQ(expected.global_ratio, actual.global_ratio);
  EXPECT_EQ(expected.num_problem_clusters, actual.num_problem_clusters);
  EXPECT_EQ(expected.problem_cluster_keys, actual.problem_cluster_keys);
  EXPECT_EQ(expected.attributed_mass, actual.attributed_mass);
  ASSERT_EQ(expected.criticals.size(), actual.criticals.size());
  for (std::size_t i = 0; i < expected.criticals.size(); ++i) {
    EXPECT_EQ(expected.criticals[i].key, actual.criticals[i].key);
    EXPECT_EQ(expected.criticals[i].attributed, actual.criticals[i].attributed);
    EXPECT_EQ(expected.criticals[i].stats, actual.criticals[i].stats);
  }
}

SessionTable big_trace() {
  // Small attribute universe so leaves repeat heavily and clusters clear the
  // significance floor; mirrors test_fold_differential.cpp.
  WorldConfig world_config;
  world_config.num_sites = 12;
  world_config.num_cdns = 3;
  world_config.num_asns = 25;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 1;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch = 50'000;
  trace_config.diurnal_amplitude = 0.0;  // epoch 0 gets the full 50k
  return generate_trace(world, events, trace_config);
}

class CriticalDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CriticalDifferential, IndexedMatchesHashedBitForBit) {
  static const SessionTable trace = big_trace();
  const std::span<const Session> sessions = trace.epoch(0);
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 150};

  ClusterEngineConfig config;
  config.max_arity = GetParam();

  const LeafFold fold = fold_sessions(sessions, thresholds, 0);
  const EpochClusterTable table = expand_fold(fold, config);
  ASSERT_FALSE(table.leaf_index.empty());

  ThreadPool pool{4};
  std::size_t total_criticals = 0;
  for (const Metric m : kAllMetrics) {
    const CriticalAnalysis hashed =
        find_critical_clusters_hashed(fold, table, params, m);
    total_criticals += hashed.criticals.size();

    const CriticalAnalysis indexed =
        find_critical_clusters_indexed(table, params, m);
    expect_analyses_identical(hashed, indexed);

    for (const std::size_t shards : {1u, 4u}) {
      const CriticalAnalysis sharded =
          find_critical_clusters_indexed(table, params, m, &pool, shards);
      expect_analyses_identical(hashed, sharded);
    }
  }
  // Guard against a vacuous pass: this trace must actually produce
  // critical clusters for at least one metric.
  EXPECT_GT(total_criticals, 0u);
}

INSTANTIATE_TEST_SUITE_P(ArityCaps, CriticalDifferential,
                         ::testing::Values(2, 7), [](const auto& info) {
                           return "arity" + std::to_string(info.param);
                         });

TEST(CriticalDifferential, IndexedPathAgreesAcrossExpansionEngines) {
  // The indexed critical path must produce the same analysis whether the
  // epoch table (and its LeafCellIndex) came from the mask-major or the
  // hashed expansion engine — the dense-id numberings differ, but every
  // analysis output is id-order independent.
  static const SessionTable trace = big_trace();
  const std::span<const Session> sessions = trace.epoch(0);
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 150};

  const LeafFold fold = fold_sessions(sessions, thresholds, 0);
  ClusterEngineConfig hashed_config;
  hashed_config.expand = ExpandStrategy::kHashed;
  const EpochClusterTable from_hashed = expand_fold(fold, hashed_config);
  const EpochClusterTable from_mask_major = expand_fold(fold, {});
  ASSERT_TRUE(from_mask_major.clusters.sorted());
  ASSERT_FALSE(from_hashed.clusters.sorted());

  ThreadPool pool{4};
  std::size_t total_criticals = 0;
  for (const Metric m : kAllMetrics) {
    const CriticalAnalysis baseline =
        find_critical_clusters_hashed(fold, from_hashed, params, m);
    total_criticals += baseline.criticals.size();
    // Hashed critical extraction over the sorted-mode store (pure
    // binary-search lookups) and indexed extraction over both tables.
    expect_analyses_identical(
        baseline,
        find_critical_clusters_hashed(fold, from_mask_major, params, m));
    for (const std::size_t shards : {1u, 4u}) {
      expect_analyses_identical(
          baseline, find_critical_clusters_indexed(from_mask_major, params,
                                                   m, &pool, shards));
      expect_analyses_identical(
          baseline, find_critical_clusters_indexed(from_hashed, params, m,
                                                   &pool, shards));
    }
  }
  EXPECT_GT(total_criticals, 0u);
}

TEST(CriticalDifferential, DispatchSelectsStrategyByIndexPresence) {
  static const SessionTable trace = big_trace();
  const std::span<const Session> sessions = trace.epoch(0);
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 150};

  const LeafFold fold = fold_sessions(sessions, thresholds, 0);
  ClusterEngineConfig no_index;
  no_index.index_cells = false;
  const EpochClusterTable plain = expand_fold(fold, no_index);
  ASSERT_TRUE(plain.leaf_index.empty());
  const EpochClusterTable indexed = expand_fold(fold, {});

  for (const Metric m : kAllMetrics) {
    // Without an index the dispatcher must fall back to the hashed
    // strategy (and produce the same analysis as the explicit call).
    expect_analyses_identical(
        find_critical_clusters_hashed(fold, plain, params, m),
        find_critical_clusters(fold, plain, params, m));
    // With one it must agree too — strategies are interchangeable.
    expect_analyses_identical(
        find_critical_clusters_hashed(fold, indexed, params, m),
        find_critical_clusters(fold, indexed, params, m));
  }

  // Asking for the indexed strategy on an index-less non-empty table is a
  // caller error, not a silent fallback.
  EXPECT_THROW(
      (void)find_critical_clusters_indexed(plain, params, Metric::kBufRatio),
      std::invalid_argument);
}

TEST(CriticalDifferential, EmptyTableYieldsEmptyAnalysis) {
  const LeafFold fold;  // no sessions
  const EpochClusterTable table = expand_fold(fold, {});
  const CriticalAnalysis analysis = find_critical_clusters(
      fold, table, ProblemClusterParams{}, Metric::kBufRatio);
  EXPECT_EQ(analysis.sessions, 0u);
  EXPECT_EQ(analysis.num_problem_clusters, 0u);
  EXPECT_TRUE(analysis.criticals.empty());
  EXPECT_TRUE(analysis.problem_cluster_keys.empty());
  EXPECT_EQ(analysis.attributed_mass, 0.0);
}

}  // namespace
}  // namespace vq
