#include "src/core/costbenefit.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

PipelineResult two_cause_result() {
  // Cause A: cheap-to-fix site cluster, 60 problem sessions/epoch.
  // Cause B: expensive CDN cluster, 80 problem sessions/epoch.
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 4; ++e) {
    for (std::uint16_t cdn = 1; cdn <= 4; ++cdn) {
      test::add_sessions(sessions, e, Attrs{.site = 1, .cdn = cdn},
                         test::bad_buffering(), 15);
      test::add_sessions(sessions, e, Attrs{.site = 1, .cdn = cdn},
                         test::good_quality(), 10);
    }
    for (std::uint16_t site = 10; site <= 13; ++site) {
      test::add_sessions(sessions, e, Attrs{.site = site, .cdn = 9},
                         test::bad_buffering(), 20);
      test::add_sessions(sessions, e, Attrs{.site = site, .cdn = 9},
                         test::good_quality(), 10);
    }
    for (std::uint16_t site = 20; site < 38; ++site) {
      test::add_sessions(sessions, e, Attrs{.site = site, .cdn = 5},
                         test::bad_buffering(), 2);
      test::add_sessions(sessions, e, Attrs{.site = site, .cdn = 5},
                         test::good_quality(), 48);
    }
  }
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  return run_pipeline(SessionTable{std::move(sessions)}, config);
}

TEST(CostModel, SumsDimensionCostsAndTraffic) {
  RemediationCostModel costs;
  const ClusterKey site =
      ClusterKey::pack(dim_bit(AttrDim::kSite), Attrs{.site = 1}.vec());
  const ClusterKey site_cdn = ClusterKey::pack(
      dim_bit(AttrDim::kSite) | dim_bit(AttrDim::kCdn),
      Attrs{.site = 1, .cdn = 2}.vec());
  EXPECT_DOUBLE_EQ(costs.cluster_cost(site, 0.0), costs.dim_fixed_cost[0]);
  EXPECT_DOUBLE_EQ(costs.cluster_cost(site_cdn, 0.0),
                   costs.dim_fixed_cost[0] + costs.dim_fixed_cost[1]);
  EXPECT_DOUBLE_EQ(costs.cluster_cost(site, 1000.0),
                   costs.dim_fixed_cost[0] + 1000.0 * costs.per_session_cost);
}

TEST(CostBenefitPlanner, UnlimitedBudgetTakesEverything) {
  const PipelineResult result = two_cause_result();
  const CostBenefitPlanner planner{result};
  const RemediationCostModel costs;
  const auto plan = planner.plan(Metric::kBufRatio, costs, 1e12);
  ASSERT_FALSE(plan.items.empty());
  EXPECT_GT(plan.alleviated_fraction, 0.3);
  EXPECT_LE(plan.alleviated_fraction, 1.0 + 1e-9);
  // Greedy order is benefit-per-cost descending.
  for (std::size_t i = 1; i < plan.items.size(); ++i) {
    EXPECT_GE(plan.items[i - 1].benefit_per_cost,
              plan.items[i].benefit_per_cost);
  }
}

TEST(CostBenefitPlanner, ZeroBudgetBuysNothing) {
  const PipelineResult result = two_cause_result();
  const CostBenefitPlanner planner{result};
  const auto plan = planner.plan(Metric::kBufRatio, {}, 0.0);
  EXPECT_TRUE(plan.items.empty());
  EXPECT_EQ(plan.alleviated_fraction, 0.0);
}

TEST(CostBenefitPlanner, BudgetIsRespected) {
  const PipelineResult result = two_cause_result();
  const CostBenefitPlanner planner{result};
  const RemediationCostModel costs;
  for (const double budget : {1.0, 3.0, 10.0, 30.0}) {
    const auto plan = planner.plan(Metric::kBufRatio, costs, budget);
    EXPECT_LE(plan.total_cost, budget + 1e-9);
  }
}

TEST(CostBenefitPlanner, AlleviationMonotoneInBudget) {
  const PipelineResult result = two_cause_result();
  const CostBenefitPlanner planner{result};
  const RemediationCostModel costs;
  double prev = -1.0;
  for (const double budget : {0.0, 2.0, 5.0, 20.0, 100.0}) {
    const auto plan = planner.plan(Metric::kBufRatio, costs, budget);
    EXPECT_GE(plan.alleviated_fraction, prev - 1e-12);
    prev = plan.alleviated_fraction;
  }
}

TEST(CostBenefitPlanner, ExpensiveDimensionsDeprioritised) {
  const PipelineResult result = two_cause_result();
  const CostBenefitPlanner planner{result};
  // Make CDN fixes prohibitively expensive: the first pick must not be a
  // CDN-involving cluster even though the CDN cause has more raw mass.
  RemediationCostModel costs;
  costs.dim_fixed_cost[static_cast<int>(AttrDim::kCdn)] = 1e9;
  const auto plan = planner.plan(Metric::kBufRatio, costs, 100.0);
  ASSERT_FALSE(plan.items.empty());
  EXPECT_FALSE(plan.items[0].key.has(AttrDim::kCdn));
}

TEST(CostBenefitPlanner, FrontierIsMonotone) {
  const PipelineResult result = two_cause_result();
  const CostBenefitPlanner planner{result};
  const auto frontier = planner.frontier(Metric::kBufRatio, {});
  ASSERT_GE(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].cost, 0.0);
  EXPECT_EQ(frontier[0].alleviated_fraction, 0.0);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].cost, frontier[i - 1].cost);
    EXPECT_GE(frontier[i].alleviated_fraction,
              frontier[i - 1].alleviated_fraction - 1e-12);
  }
}

TEST(CostBenefitPlanner, EmptyResultYieldsEmptyPlan) {
  const PipelineResult result = run_pipeline(SessionTable{}, {});
  const CostBenefitPlanner planner{result};
  const auto plan = planner.plan(Metric::kJoinFailure, {}, 100.0);
  EXPECT_TRUE(plan.items.empty());
  const auto frontier = planner.frontier(Metric::kJoinFailure, {});
  EXPECT_EQ(frontier.size(), 1u);
}

}  // namespace
}  // namespace vq
