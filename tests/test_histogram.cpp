#include "src/stats/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vq {
namespace {

TEST(Histogram, LinearBinningIsExact) {
  Histogram h = Histogram::linear(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  h.add(0.0);   // [0,2)
  h.add(1.99);  // [0,2)
  h.add(2.0);   // [2,4)
  h.add(9.99);  // [8,10)
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEndBins) {
  Histogram h = Histogram::linear(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, LogarithmicBinsSpanDecades) {
  Histogram h = Histogram::logarithmic(0.001, 1.0, 3);
  const auto [lo0, hi0] = h.bounds(0);
  EXPECT_NEAR(lo0, 0.001, 1e-9);
  EXPECT_NEAR(hi0, 0.01, 1e-6);
  const auto [lo2, hi2] = h.bounds(2);
  EXPECT_NEAR(lo2, 0.1, 1e-6);
  EXPECT_NEAR(hi2, 1.0, 1e-9);
  h.add(0.005);
  h.add(0.05);
  h.add(0.5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((void)Histogram::linear(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW((void)Histogram::linear(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)Histogram::logarithmic(0.0, 1.0, 3),
               std::invalid_argument);
  EXPECT_THROW((void)Histogram::logarithmic(2.0, 1.0, 3),
               std::invalid_argument);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::linear(0, 1, 2).cumulative_fraction(0.5), 0.0);
}

TEST(Histogram, BoundsOutOfRangeThrows) {
  const Histogram h = Histogram::linear(0.0, 1.0, 2);
  EXPECT_THROW((void)h.bounds(2), std::out_of_range);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
}

TEST(Histogram, RenderShowsProportionalBars) {
  Histogram h = Histogram::linear(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  for (int i = 0; i < 5; ++i) h.add(1.5);
  const std::string render = h.render(10);
  // Two lines; the first bar twice the second's width.
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 2);
  const auto first_line = render.substr(0, render.find('\n'));
  const auto second_line = render.substr(render.find('\n') + 1);
  EXPECT_EQ(std::count(first_line.begin(), first_line.end(), '#'), 10);
  EXPECT_EQ(std::count(second_line.begin(), second_line.end(), '#'), 5);
}

}  // namespace
}  // namespace vq
