// Chaos tests for the columnar ("VQTC") container: truncation, bit flips
// (chunk payloads, footer index, tail), short reads across chunk
// boundaries, and transient I/O faults must end in a positioned exception
// (strict) or whole-chunk quarantine with exact IngestReport accounting —
// never a crash.  A damaged footer must cost nothing when the chunks are
// intact (sequential-scan rebuild).  CI runs this suite under ASan+UBSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/gen/columnar.h"
#include "src/gen/trace_io.h"
#include "tests/fault_injection.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;
using test::FaultyStream;
using test::FaultyStreambuf;

constexpr std::size_t kPerEpoch = 8;
constexpr std::uint32_t kEpochs = 3;

/// Small multi-epoch trace with per-dimension variety, plus its columnar
/// rendering and the landmarks the fault offsets are computed from.
struct TinyColumnar {
  SessionTable table;
  std::string bytes;
  std::size_t chunk0 = 0;  // offset of epoch 0's chunk
  std::size_t chunk1 = 0;
  std::size_t chunk2 = 0;
  std::size_t footer = 0;  // offset of the footer magic
};

TinyColumnar tiny_columnar() {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    for (int i = 0; i < 3; ++i) {
      (void)schema.intern(static_cast<AttrDim>(d), "v" + std::to_string(i));
    }
  }
  std::vector<Session> sessions;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (std::uint16_t i = 0; i < kPerEpoch; ++i) {
      test::add_sessions(
          sessions, epoch,
          Attrs{.cdn = static_cast<std::uint16_t>(i % 3),
                .asn = static_cast<std::uint16_t>((i + 1) % 3)},
          i % 2 == 0 ? test::good_quality() : test::bad_buffering(), 1);
    }
  }
  TinyColumnar out;
  out.table = SessionTable{std::move(sessions)};
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_columnar(buffer, out.table, schema);
  out.bytes = buffer.str();
  out.chunk0 = out.bytes.find("VQCH");
  out.chunk1 = out.bytes.find("VQCH", out.chunk0 + 1);
  out.chunk2 = out.bytes.find("VQCH", out.chunk1 + 1);
  out.footer = out.bytes.rfind("VQTF");
  EXPECT_NE(out.chunk2, std::string::npos);
  EXPECT_NE(out.footer, std::string::npos);
  return out;
}

RobustLoadedTrace load_faulty(const TinyColumnar& t,
                              const FaultyStreambuf::Options& faults,
                              ErrorPolicy policy = ErrorPolicy::kQuarantine) {
  FaultyStream fs{t.bytes, faults};
  return read_trace_columnar_robust(fs.stream(), {.policy = policy});
}

void expect_epoch_intact(const TinyColumnar& t, const SessionTable& loaded,
                         std::uint32_t epoch) {
  const std::span<const Session> expected = t.table.epoch(epoch);
  const std::span<const Session> actual =
      epoch < loaded.num_epochs() ? loaded.epoch(epoch)
                                  : std::span<const Session>{};
  ASSERT_EQ(actual.size(), expected.size()) << "epoch " << epoch;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].attrs, expected[i].attrs);
    EXPECT_EQ(actual[i].quality, expected[i].quality);
  }
}

TEST(ColumnarFault, BitFlipInChunkStrictThrowsPositioned) {
  const TinyColumnar t = tiny_columnar();
  FaultyStream fs{t.bytes, {.flip_offset = t.chunk1 + 20}};
  try {
    (void)read_trace_columnar(fs.stream());
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chunk checksum mismatch"), std::string::npos)
        << what;
    EXPECT_NE(what.find("epoch 1"), std::string::npos) << what;
  }
}

TEST(ColumnarFault, BitFlipInChunkQuarantinesThatChunkOnly) {
  const TinyColumnar t = tiny_columnar();
  const RobustLoadedTrace loaded =
      load_faulty(t, {.flip_offset = t.chunk1 + 20});
  // The whole damaged chunk is lost; its neighbours are untouched.
  expect_epoch_intact(t, loaded.table, 0);
  expect_epoch_intact(t, loaded.table, 2);
  EXPECT_TRUE(loaded.table.epoch(1).empty());
  EXPECT_EQ(loaded.report.rows_quarantined, kPerEpoch);
  EXPECT_EQ(loaded.report.rows_kept, 2 * kPerEpoch);
  EXPECT_EQ(loaded.report.rows_read,
            loaded.report.rows_kept + loaded.report.rows_quarantined);
  EXPECT_EQ(loaded.report.reason_counts[static_cast<std::uint8_t>(
                RowErrorKind::kBadChecksum)],
            kPerEpoch);
  EXPECT_FALSE(loaded.report.input_truncated);
  EXPECT_EQ(loaded.report.degraded_epochs(),
            (std::vector<std::uint32_t>{1}));
}

TEST(ColumnarFault, ChunkHeaderDisagreeingWithIndexIsQuarantined) {
  const TinyColumnar t = tiny_columnar();
  // Flip the chunk's own epoch field: the footer stays valid, so the
  // header/index mismatch is caught before any payload is trusted.
  const RobustLoadedTrace loaded =
      load_faulty(t, {.flip_offset = t.chunk2 + 4});
  expect_epoch_intact(t, loaded.table, 0);
  expect_epoch_intact(t, loaded.table, 1);
  EXPECT_EQ(loaded.report.rows_quarantined, kPerEpoch);
  EXPECT_EQ(loaded.report.reason_counts[static_cast<std::uint8_t>(
                RowErrorKind::kBadChecksum)],
            kPerEpoch);
}

TEST(ColumnarFault, DamagedFooterRecoversByScanAtZeroCost) {
  const TinyColumnar t = tiny_columnar();
  // One flip inside the footer entries: strict refuses, the non-strict
  // policies rebuild the index from the self-delimiting chunks and lose
  // nothing.
  const FaultyStreambuf::Options flip{.flip_offset = t.footer + 12};
  {
    FaultyStream fs{t.bytes, flip};
    try {
      (void)read_trace_columnar(fs.stream());
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find("damaged footer index"),
                std::string::npos)
          << e.what();
    }
  }
  FaultyStream fs{t.bytes, flip};
  ColumnarReader reader{fs.stream(), {.policy = ErrorPolicy::kQuarantine}};
  EXPECT_TRUE(reader.footer_recovered());
  EXPECT_EQ(reader.num_epochs(), kEpochs);
  EXPECT_EQ(reader.total_sessions(), kEpochs * kPerEpoch);
  SessionColumns columns;
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    EXPECT_FALSE(reader.read_epoch(e, columns));
    EXPECT_EQ(columns.size(), kPerEpoch);
  }
  EXPECT_FALSE(reader.report().degraded());
}

TEST(ColumnarFault, DamagedTailRecoversByScan) {
  const TinyColumnar t = tiny_columnar();
  const RobustLoadedTrace loaded =
      load_faulty(t, {.flip_offset = t.bytes.size() - 2});  // inside "VQTE"
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    expect_epoch_intact(t, loaded.table, e);
  }
  EXPECT_EQ(loaded.report.rows_quarantined, 0u);
  EXPECT_FALSE(loaded.report.input_truncated);
}

TEST(ColumnarFault, TruncationInsideFooterLosesNoData) {
  const TinyColumnar t = tiny_columnar();
  const RobustLoadedTrace loaded = load_faulty(t, {.truncate_at = t.footer + 6});
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    expect_epoch_intact(t, loaded.table, e);
  }
  EXPECT_EQ(loaded.report.rows_kept, kEpochs * kPerEpoch);
  EXPECT_FALSE(loaded.report.input_truncated);
}

TEST(ColumnarFault, TruncationMidChunkKeepsEverythingBeforeTheCut) {
  const TinyColumnar t = tiny_columnar();
  const RobustLoadedTrace loaded = load_faulty(t, {.truncate_at = t.chunk2 + 30});
  expect_epoch_intact(t, loaded.table, 0);
  expect_epoch_intact(t, loaded.table, 1);
  EXPECT_EQ(loaded.report.rows_kept, 2 * kPerEpoch);
  EXPECT_TRUE(loaded.report.input_truncated);
  EXPECT_TRUE(loaded.report.degraded());
}

TEST(ColumnarFault, TruncationSweepStrictAlwaysThrows) {
  const TinyColumnar t = tiny_columnar();
  for (std::size_t cut = 0; cut < t.bytes.size(); ++cut) {
    FaultyStream fs{t.bytes, {.truncate_at = cut}};
    EXPECT_THROW((void)read_trace_columnar(fs.stream()), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(ColumnarFault, TruncationSweepQuarantineNeverCrashesAndAccountsExactly) {
  const TinyColumnar t = tiny_columnar();
  // Start after the schema section (a truncated schema is structural and
  // throws under every policy, covered by the strict sweep above).
  for (std::size_t cut = t.chunk0; cut < t.bytes.size(); ++cut) {
    FaultyStream fs{t.bytes, {.truncate_at = cut}};
    RobustLoadedTrace loaded;
    try {
      loaded = read_trace_columnar_robust(
          fs.stream(), {.policy = ErrorPolicy::kQuarantine});
    } catch (const std::runtime_error&) {
      continue;  // structural damage (header/schema) may still throw
    }
    EXPECT_EQ(loaded.report.rows_read,
              loaded.report.rows_kept + loaded.report.rows_quarantined)
        << "cut at " << cut;
    EXPECT_EQ(loaded.table.size(), loaded.report.rows_kept)
        << "cut at " << cut;
    // A cut anywhere before the tail either truncates data (reported) or
    // only costs the footer (rebuilt); past-the-cut epochs never appear.
    for (std::uint32_t e = 0; e < loaded.table.num_epochs(); ++e) {
      const auto epoch = loaded.table.epoch(e);
      ASSERT_LE(epoch.size(), kPerEpoch);
    }
  }
}

TEST(ColumnarFault, BitFlipSweepNeverCrashes) {
  const TinyColumnar t = tiny_columnar();
  for (std::size_t off = 0; off < t.bytes.size(); ++off) {
    FaultyStream fs{t.bytes, {.flip_offset = off}};
    try {
      const RobustLoadedTrace loaded = read_trace_columnar_robust(
          fs.stream(), {.policy = ErrorPolicy::kQuarantine});
      EXPECT_EQ(loaded.report.rows_read,
                loaded.report.rows_kept + loaded.report.rows_quarantined)
          << "flip at " << off;
    } catch (const std::runtime_error&) {
      // Structural damage (magic, version, schema) throws positioned.
    } catch (const std::out_of_range&) {
      // A flipped epoch id may push reads past num_epochs in materialize.
    }
  }
}

TEST(ColumnarFault, ShortReadsServeIdenticalBytes) {
  const TinyColumnar t = tiny_columnar();
  // Chunked underflow forces every multi-byte read (headers, whole column
  // reads) to be satisfied across several short reads, including ones that
  // straddle chunk boundaries.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}}) {
    FaultyStream fs{t.bytes, {.chunk = chunk}};
    const LoadedTrace loaded = read_trace_columnar(fs.stream());
    ASSERT_EQ(loaded.table.size(), t.table.size());
    for (std::size_t i = 0; i < t.table.size(); ++i) {
      EXPECT_EQ(loaded.table.sessions()[i].attrs,
                t.table.sessions()[i].attrs);
      EXPECT_EQ(loaded.table.sessions()[i].quality,
                t.table.sessions()[i].quality);
      EXPECT_EQ(loaded.table.sessions()[i].epoch,
                t.table.sessions()[i].epoch);
    }
  }
}

TEST(ColumnarFault, TransientIoFaultOnFooterReadRecoversByScan) {
  const TinyColumnar t = tiny_columnar();
  // The fault fires on the first read at/after the last chunk's payload —
  // which is the footer load, since the reader seeks there first.  One
  // transient failure: the scan rebuild then reads clean and loses nothing.
  FaultyStream fs{t.bytes, {.fail_at = t.footer, .fail_count = 1}};
  const RobustLoadedTrace loaded = read_trace_columnar_robust(
      fs.stream(), {.policy = ErrorPolicy::kQuarantine});
  EXPECT_EQ(fs.buf().faults_fired(), 1);
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    expect_epoch_intact(t, loaded.table, e);
  }
  EXPECT_EQ(loaded.report.rows_quarantined, 0u);
}

TEST(ColumnarFault, PersistentIoFaultMidDataTruncatesThere) {
  const TinyColumnar t = tiny_columnar();
  // Every read at/after chunk 2 fails: the footer is unreachable, the scan
  // stops at the fault, and only the epochs before it survive.
  FaultyStream fs{t.bytes, {.fail_at = t.chunk2, .fail_count = 1 << 20}};
  const RobustLoadedTrace loaded = read_trace_columnar_robust(
      fs.stream(), {.policy = ErrorPolicy::kQuarantine});
  expect_epoch_intact(t, loaded.table, 0);
  expect_epoch_intact(t, loaded.table, 1);
  EXPECT_EQ(loaded.report.rows_kept, 2 * kPerEpoch);
  EXPECT_TRUE(loaded.report.input_truncated);
  // Strict: the very first failing read (the footer load) is fatal.
  FaultyStream strict{t.bytes, {.fail_at = t.chunk2, .fail_count = 1 << 20}};
  EXPECT_THROW((void)read_trace_columnar(strict.stream()),
               std::runtime_error);
}

TEST(ColumnarFault, PoisonedEpochIdIsRejectedAtIndexAdoption) {
  const TinyColumnar t = tiny_columnar();
  // Cap epochs below the trace's span: the out-of-range chunk is rejected
  // wholesale before any seek — a flipped epoch id must not size dense
  // per-epoch structures.
  FaultyStream fs{t.bytes, {}};
  const RobustLoadedTrace loaded = read_trace_columnar_robust(
      fs.stream(), {.policy = ErrorPolicy::kQuarantine, .max_epoch = 1});
  EXPECT_EQ(loaded.table.num_epochs(), 2u);
  expect_epoch_intact(t, loaded.table, 0);
  expect_epoch_intact(t, loaded.table, 1);
  EXPECT_EQ(loaded.report.rows_quarantined, kPerEpoch);
  EXPECT_EQ(loaded.report.reason_counts[static_cast<std::uint8_t>(
                RowErrorKind::kBadNumber)],
            kPerEpoch);

  FaultyStream strict{t.bytes, {}};
  try {
    (void)read_trace_columnar_robust(
        strict.stream(), {.policy = ErrorPolicy::kStrict, .max_epoch = 1});
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("epoch 2 out of range"),
              std::string::npos)
        << e.what();
  }
}

TEST(ColumnarFault, RowLevelDamageFollowsPolicyInsideIntactChunks) {
  // Rebuild the container from sessions carrying one repairable defect (a
  // non-finite metric) so the chunk checksum matches the damaged payload:
  // this is writer-side poison, not wire corruption, and must follow the
  // row policies exactly like the binary reader.
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "v");
  }
  std::vector<Session> sessions;
  for (int i = 0; i < 6; ++i) {
    test::add_sessions(sessions, 0, Attrs{}, test::good_quality(), 1);
  }
  sessions[2].quality.bitrate_kbps =
      std::numeric_limits<float>::quiet_NaN();
  const SessionTable table{std::move(sessions)};
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_columnar(buffer, table, schema);
  const std::string bytes = buffer.str();

  {
    std::stringstream in{bytes, std::ios::in | std::ios::binary};
    try {
      (void)read_trace_columnar(in);
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find("non-finite bitrate_kbps"),
                std::string::npos)
          << e.what();
    }
  }
  {
    std::stringstream in{bytes, std::ios::in | std::ios::binary};
    const RobustLoadedTrace loaded = read_trace_columnar_robust(
        in, {.policy = ErrorPolicy::kQuarantine});
    EXPECT_EQ(loaded.table.size(), 5u);
    EXPECT_EQ(loaded.report.rows_quarantined, 1u);
    EXPECT_EQ(loaded.report.reason_counts[static_cast<std::uint8_t>(
                  RowErrorKind::kNonFinite)],
              1u);
  }
  {
    std::stringstream in{bytes, std::ios::in | std::ios::binary};
    const RobustLoadedTrace loaded = read_trace_columnar_robust(
        in, {.policy = ErrorPolicy::kBestEffort});
    EXPECT_EQ(loaded.table.size(), 6u);
    EXPECT_EQ(loaded.report.fields_clamped, 1u);
    EXPECT_EQ(loaded.table.sessions()[2].quality.bitrate_kbps, 0.0F);
  }
}

}  // namespace
}  // namespace vq
