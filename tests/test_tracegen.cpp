#include "src/gen/tracegen.h"

#include <gtest/gtest.h>

namespace vq {
namespace {

World small_world() {
  WorldConfig config;
  config.num_sites = 40;
  config.num_cdns = 8;
  config.num_asns = 100;
  return World::build(config);
}

TraceConfig small_trace() {
  TraceConfig config;
  config.num_epochs = 6;
  config.sessions_per_epoch = 500;
  return config;
}

TEST(TraceGen, SessionCountsFollowDiurnalPattern) {
  const TraceConfig config = small_trace();
  const World world = small_world();
  const EventSchedule events = EventSchedule::none(config.num_epochs);
  const SessionTable trace = generate_trace(world, events, config);
  EXPECT_EQ(trace.num_epochs(), config.num_epochs);
  for (std::uint32_t e = 0; e < config.num_epochs; ++e) {
    EXPECT_EQ(trace.epoch(e).size(), sessions_in_epoch(config, e));
  }
  // The diurnal factor must actually modulate (amplitude 0.35 over a day).
  TraceConfig day = small_trace();
  day.num_epochs = 24;
  std::uint32_t lo = UINT32_MAX;
  std::uint32_t hi = 0;
  for (std::uint32_t e = 0; e < 24; ++e) {
    lo = std::min(lo, sessions_in_epoch(day, e));
    hi = std::max(hi, sessions_in_epoch(day, e));
  }
  EXPECT_GT(hi, lo + 100u);
}

TEST(TraceGen, AttributesWithinWorldRanges) {
  const World world = small_world();
  const TraceConfig config = small_trace();
  const SessionTable trace =
      generate_trace(world, EventSchedule::none(config.num_epochs), config);
  for (const Session& s : trace.sessions()) {
    EXPECT_LT(s.attrs[AttrDim::kSite], world.sites().size());
    EXPECT_LT(s.attrs[AttrDim::kCdn], world.cdns().size());
    EXPECT_LT(s.attrs[AttrDim::kAsn], world.asns().size());
    EXPECT_LT(s.attrs[AttrDim::kConnType], kConnTypeNames.size());
    EXPECT_LT(s.attrs[AttrDim::kPlayer], kPlayerNames.size());
    EXPECT_LT(s.attrs[AttrDim::kBrowser], kBrowserNames.size());
    EXPECT_LE(s.attrs[AttrDim::kVodLive], 1);
    // The assigned CDN must be one the site contracts with.
    const SiteModel& site = world.sites()[s.attrs[AttrDim::kSite]];
    EXPECT_NE(std::find(site.cdn_ids.begin(), site.cdn_ids.end(),
                        s.attrs[AttrDim::kCdn]),
              site.cdn_ids.end());
  }
}

TEST(TraceGen, DeterministicForSameInputs) {
  const World world = small_world();
  const TraceConfig config = small_trace();
  const EventSchedule events = EventSchedule::none(config.num_epochs);
  const SessionTable a = generate_trace(world, events, config);
  const SessionTable b = generate_trace(world, events, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sessions()[i].attrs, b.sessions()[i].attrs);
    EXPECT_EQ(a.sessions()[i].quality, b.sessions()[i].quality);
  }
}

TEST(TraceGen, EpochsAreIndependentlyReproducible) {
  // generate_epoch(e) must equal epoch e of the full trace (derived RNG
  // streams, no cross-epoch state).
  const World world = small_world();
  const TraceConfig config = small_trace();
  const EventSchedule events = EventSchedule::none(config.num_epochs);
  const SessionTable full = generate_trace(world, events, config);
  const std::vector<Session> epoch3 =
      generate_epoch(world, events, config, 3);
  const auto span3 = full.epoch(3);
  ASSERT_EQ(epoch3.size(), span3.size());
  for (std::size_t i = 0; i < epoch3.size(); ++i) {
    EXPECT_EQ(epoch3[i].attrs, span3[i].attrs);
    EXPECT_EQ(epoch3[i].quality, span3[i].quality);
  }
}

TEST(TraceGen, EventsProduceMoreProblemSessions) {
  const World world = small_world();
  TraceConfig config = small_trace();
  config.sessions_per_epoch = 3'000;
  config.num_epochs = 2;

  EventScheduleConfig no_events;
  no_events.num_epochs = config.num_epochs;
  no_events.events_per_epoch = 0.0;
  const EventSchedule baseline = EventSchedule::generate(world, no_events);
  EXPECT_TRUE(baseline.events().empty());

  EventScheduleConfig heavy;
  heavy.num_epochs = config.num_epochs;
  heavy.events_per_epoch = 6.0;
  heavy.w_site = 1.0;  // site-scoped failure-prone events only
  heavy.w_cdn = heavy.w_asn = heavy.w_conn = heavy.w_site_conn = 0.0;
  heavy.w_cdn_asn = heavy.w_cdn_conn = heavy.w_site_browser = 0.0;
  heavy.w_asn_conn = 0.0;
  const EventSchedule stormy = EventSchedule::generate(world, heavy);
  ASSERT_FALSE(stormy.events().empty());

  const SessionTable calm_trace = generate_trace(world, baseline, config);
  const SessionTable storm_trace = generate_trace(world, stormy, config);
  const auto problem_count = [](const SessionTable& t) {
    std::size_t n = 0;
    for (const Session& s : t.sessions()) {
      if (s.quality.join_failed || s.quality.buffering_ratio > 0.05F ||
          s.quality.join_time_ms > 10'000.0F) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GT(problem_count(storm_trace), problem_count(calm_trace));
}

TEST(TraceGen, EventScopeOnlyAffectsMatchingSessions) {
  // Compare per-scope failure rates between a calm and a stormy world
  // sharing the same seeds: sessions outside every event scope must be
  // bit-identical.
  const World world = small_world();
  TraceConfig config = small_trace();
  config.num_epochs = 2;
  config.sessions_per_epoch = 2'000;

  EventScheduleConfig one;
  one.num_epochs = 2;
  one.events_per_epoch = 0.4;
  one.w_cdn = 1.0;
  one.w_site = one.w_asn = one.w_conn = one.w_site_conn = 0.0;
  one.w_cdn_asn = one.w_cdn_conn = one.w_site_browser = one.w_asn_conn = 0.0;
  const EventSchedule schedule = EventSchedule::generate(world, one);
  ASSERT_FALSE(schedule.events().empty());

  const SessionTable calm =
      generate_trace(world, EventSchedule::none(2), config);
  const SessionTable storm = generate_trace(world, schedule, config);
  ASSERT_EQ(calm.size(), storm.size());

  std::size_t in_scope = 0;
  for (std::size_t i = 0; i < calm.size(); ++i) {
    const Session& a = calm.sessions()[i];
    const Session& b = storm.sessions()[i];
    ASSERT_EQ(a.attrs, b.attrs);
    const ClusterKey leaf = ClusterKey::pack(kFullMask, a.attrs);
    bool affected = false;
    for (const std::uint32_t idx : schedule.active_at(a.epoch)) {
      if (schedule.events()[idx].scope.generalizes(leaf)) affected = true;
    }
    if (affected) {
      ++in_scope;
    } else {
      EXPECT_EQ(a.quality, b.quality);
    }
  }
  EXPECT_GT(in_scope, 0u);
}

}  // namespace
}  // namespace vq
