// Extension 1 (paper §6 "Cost of remedial measures"): cost-aware
// remediation planning.  Compares the coverage-only top-k policy (Fig. 11)
// against the benefit-per-cost greedy policy at equal budgets, and prints
// the cost/alleviation frontier for join failures.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/costbenefit.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const CostBenefitPlanner planner{exp.result};
  const WhatIfAnalyzer whatif{exp.result};
  const RemediationCostModel costs;

  bench::print_header(
      "Extension 1: cost-aware remediation planning (paper §6 future work)",
      "benefit-per-cost ordering dominates coverage ordering at small "
      "budgets");

  std::printf("cost/alleviation frontier (JoinFailure, greedy by "
              "benefit-per-cost):\n%12s %12s %10s\n",
              "clusters", "cum. cost", "alleviated");
  const auto frontier = planner.frontier(Metric::kJoinFailure, costs);
  for (const std::size_t i : {0ul, 1ul, 2ul, 5ul, 10ul, 20ul, 50ul, 100ul}) {
    if (i >= frontier.size()) break;
    std::printf("%12zu %12.1f %9.1f%%\n", i, frontier[i].cost,
                100.0 * frontier[i].alleviated_fraction);
  }
  if (!frontier.empty()) {
    std::printf("%12zu %12.1f %9.1f%%  (everything)\n", frontier.size() - 1,
                frontier.back().cost,
                100.0 * frontier.back().alleviated_fraction);
  }

  std::printf("\ncost-aware vs coverage-only at equal cluster budgets "
              "(JoinFailure):\n");
  std::printf("%10s %22s %22s\n", "budget", "cost-aware alleviation",
              "same #clusters by coverage");
  const std::size_t distinct =
      whatif.distinct_critical_count(Metric::kJoinFailure);
  for (const double budget : {10.0, 25.0, 50.0, 100.0, 250.0}) {
    const auto plan = planner.plan(Metric::kJoinFailure, costs, budget);
    const double fraction_of_keys =
        distinct == 0 ? 0.0
                      : static_cast<double>(plan.items.size()) /
                            static_cast<double>(distinct);
    const double fractions[] = {fraction_of_keys};
    const auto coverage_pick = whatif.topk_sweep(
        Metric::kJoinFailure, RankBy::kCoverage, fractions);
    std::printf("%10.0f %13.1f%% (%3zu cl) %21.1f%%\n", budget,
                100.0 * plan.alleviated_fraction, plan.items.size(),
                100.0 * coverage_pick[0].alleviated_fraction);
  }
  std::printf("\nnote: coverage-only ranks by raw benefit, so with equal "
              "cluster counts it is an upper bound; the cost-aware column "
              "shows how much of that is retained when cheap fixes are "
              "preferred under a real budget.\n");
  return 0;
}
