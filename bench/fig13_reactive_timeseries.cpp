// Figure 13: per-epoch problem-session counts for join failures under the
// reactive strategy — original, after reactive diagnosis (1-hour delay),
// and the floor of sessions outside every critical cluster.
//
// Paper shape targets: the reactive line roughly halves the original, and
// the residual gap to the "not in critical clusters" floor is small.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const WhatIfAnalyzer whatif{exp.result};

  bench::print_header(
      "Figure 13: reactive alleviation timeseries (JoinFailure)",
      "reactive fixing reduces problem sessions by ~50%; the remainder "
      "tracks the not-in-critical-clusters floor");

  const auto outcome = whatif.reactive(Metric::kJoinFailure, 1);
  std::printf("%6s %12s %18s %20s\n", "epoch", "original",
              "after_reactive", "not_in_criticals");
  double orig = 0.0;
  double after = 0.0;
  double floor_sum = 0.0;
  for (std::size_t e = 0; e < outcome.original.size(); ++e) {
    std::printf("%6zu %12.0f %18.1f %20.1f\n", e, outcome.original[e],
                outcome.after_reactive[e], outcome.outside_critical[e]);
    orig += outcome.original[e];
    after += outcome.after_reactive[e];
    floor_sum += outcome.outside_critical[e];
  }

  std::printf("\nshape checks:\n");
  std::printf("  overall reduction: %.1f%% (paper ~50%%)\n",
              orig > 0 ? 100.0 * (orig - after) / orig : 0.0);
  std::printf("  share outside critical clusters: %.1f%% of problem "
              "sessions (unfixable by this strategy)\n",
              orig > 0 ? 100.0 * floor_sum / orig : 0.0);
  return 0;
}
