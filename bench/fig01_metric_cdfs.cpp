// Figure 1: CDFs of buffering ratio, average bitrate, and join time over the
// whole trace.
//
// Paper shape targets: >5% of sessions with buffering ratio > 10%; >80% of
// sessions below 2 Mbps average bitrate; >5% of sessions with join time
// above 10 s.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/stats/cdf.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Figure 1: CDFs of quality metrics",
      ">5% sessions with bufratio>10%; >80% below 2Mbps; >5% join>10s");

  std::vector<double> bufratio;
  std::vector<double> bitrate;
  std::vector<double> join_time;
  for (const Session& s : exp.trace.sessions()) {
    if (s.quality.join_failed) continue;  // undefined for failed joins
    bufratio.push_back(s.quality.buffering_ratio);
    bitrate.push_back(s.quality.bitrate_kbps);
    join_time.push_back(s.quality.join_time_ms);
  }

  const EmpiricalCdf buf_cdf{std::move(bufratio)};
  const EmpiricalCdf bit_cdf{std::move(bitrate)};
  const EmpiricalCdf join_cdf{std::move(join_time)};

  std::printf("(a) buffering ratio\n%s\n",
              buf_cdf.table(15, "buffering_ratio").c_str());
  std::printf("(b) average bitrate\n%s\n",
              bit_cdf.table(15, "bitrate_kbps").c_str());
  std::printf("(c) join time\n%s\n",
              join_cdf.table(15, "join_time_ms").c_str());

  std::printf("shape checks (paper -> measured):\n");
  std::printf("  P(bufratio > 10%%)      >5%%    -> %5.1f%%\n",
              100.0 * (1.0 - buf_cdf.at(0.10)));
  std::printf("  P(bitrate < 2 Mbps)    >80%%   -> %5.1f%%\n",
              100.0 * bit_cdf.at(2000.0));
  std::printf("  P(join time > 10 s)    >5%%    -> %5.1f%%\n",
              100.0 * (1.0 - join_cdf.at(10'000.0)));
  return 0;
}
