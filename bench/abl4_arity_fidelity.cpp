// Ablation 4: lattice arity cap vs analysis fidelity.
//
// DESIGN.md calls out the full 127-subset lattice as a deliberate choice;
// this bench quantifies what capping the subset size (a large constant-
// factor speedup, see perf_engine) costs in problem-cluster population and
// critical-cluster coverage.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Ablation 4: lattice arity cap vs fidelity",
      "arity 2-3 retains most coverage at a fraction of the lattice cells; "
      "full arity is the faithful default");

  std::printf("%6s %8s %14s %14s %12s %12s\n", "arity", "cells",
              "problem_clus", "critical_clus", "cc-coverage", "runtime_s");
  for (const int arity : {1, 2, 3, 5, 7}) {
    PipelineConfig config = exp.config;
    config.engine.max_arity = arity;
    const auto start = std::chrono::steady_clock::now();
    const PipelineResult result = run_pipeline(exp.trace, config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    double problem = 0.0;
    double critical = 0.0;
    double coverage = 0.0;
    for (const Metric m : kAllMetrics) {
      const auto agg = result.aggregates(m);
      problem += agg.mean_problem_clusters;
      critical += agg.mean_critical_clusters;
      coverage += agg.mean_critical_coverage;
    }
    std::printf("%6d %8zu %14.1f %14.1f %12.3f %12.2f\n", arity,
                lattice_masks(arity).size(), problem / kNumMetrics,
                critical / kNumMetrics, coverage / kNumMetrics, seconds);
  }
  return 0;
}
