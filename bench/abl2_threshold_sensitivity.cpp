// Ablation 2: sensitivity to the problem-session thresholds and the
// problem-cluster significance parameters — the paper's §2 claim that "the
// results are qualitatively similar for other choices of these thresholds".
//
// For each configuration we report the two qualitative invariants the
// paper's story rests on: (1) a small fraction of critical clusters covers
// most clustered problem sessions; (2) fixing the top 1% of critical
// clusters alleviates a large share of problem sessions.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Ablation 2: threshold sensitivity",
      "qualitative structure is stable across threshold choices (§2)");

  struct Config {
    const char* label;
    double bufratio;
    double bitrate;
    double join_ms;
    double multiplier;
    std::uint32_t min_sessions;
  };
  const std::uint32_t base_min = exp.config.cluster_params.min_sessions;
  const Config configs[] = {
      {"paper defaults", 0.05, 700, 10'000, 1.5, base_min},
      {"strict quality", 0.02, 1'000, 5'000, 1.5, base_min},
      {"lenient quality", 0.10, 500, 20'000, 1.5, base_min},
      {"stricter clusters", 0.05, 700, 10'000, 2.0, base_min * 2},
      {"looser clusters", 0.05, 700, 10'000, 1.25, base_min / 2},
  };

  std::printf("%-20s %-12s %10s %10s %10s %12s\n", "config", "metric",
              "probratio", "cc/pc", "cc-cover", "top1%-fix");
  for (const Config& c : configs) {
    PipelineConfig config;
    config.thresholds.max_buffering_ratio = c.bufratio;
    config.thresholds.min_bitrate_kbps = c.bitrate;
    config.thresholds.max_join_time_ms = c.join_ms;
    config.cluster_params.ratio_multiplier = c.multiplier;
    config.cluster_params.min_sessions = c.min_sessions;
    const PipelineResult result = run_pipeline(exp.trace, config);
    const WhatIfAnalyzer whatif{result};
    const double one_pct[] = {0.01};

    for (const Metric m : kAllMetrics) {
      const auto agg = result.aggregates(m);
      double prob_ratio = 0.0;
      const auto& summaries = result.per_metric[static_cast<int>(m)];
      for (const auto& s : summaries) {
        prob_ratio +=
            s.analysis.sessions == 0
                ? 0.0
                : static_cast<double>(s.analysis.problem_sessions) /
                      static_cast<double>(s.analysis.sessions);
      }
      prob_ratio /= static_cast<double>(summaries.size());
      const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, one_pct);
      std::printf("%-20s %-12s %10.3f %9.1f%% %10.2f %11.1f%%\n", c.label,
                  std::string(metric_name(m)).c_str(), prob_ratio,
                  agg.mean_problem_clusters > 0
                      ? 100.0 * agg.mean_critical_clusters /
                            agg.mean_problem_clusters
                      : 0.0,
                  agg.mean_critical_coverage,
                  100.0 * sweep[0].alleviated_fraction);
    }
    std::printf("\n");
  }
  std::printf("qualitative invariants to eyeball: cc/pc stays small and "
              "cc-cover / top1%%-fix stay substantial in every row.\n");
  return 0;
}
