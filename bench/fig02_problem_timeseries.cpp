// Figure 2: hourly fraction of problem sessions per quality metric.
//
// Paper shape targets: the problem ratio is consistently high over time
// (buffering ratio averages 0.097 per hour with tiny stddev) and the four
// metrics are only weakly correlated in time.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/stats/summary.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const auto& result = exp.result;

  bench::print_header(
      "Figure 2: fraction of problem sessions per hour",
      "consistently high over time (BufRatio mean 0.097/h), metrics only "
      "weakly correlated");

  std::printf("%6s %10s %10s %10s %12s\n", "epoch", "BufRatio", "Bitrate",
              "JoinTime", "JoinFailure");
  std::array<std::vector<double>, kNumMetrics> series;
  for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
    std::printf("%6u", e);
    for (const Metric m : kAllMetrics) {
      const auto& a = result.at(m, e).analysis;
      const double ratio =
          a.sessions == 0 ? 0.0
                          : static_cast<double>(a.problem_sessions) /
                                static_cast<double>(a.sessions);
      series[static_cast<int>(m)].push_back(ratio);
      std::printf(" %10.4f", ratio);
    }
    std::printf("\n");
  }

  std::printf("\nper-metric hourly problem ratio (paper: BufRatio mean "
              "0.097, stddev < 1e-3 at 300M sessions):\n");
  for (const Metric m : kAllMetrics) {
    StreamingSummary summary;
    for (const double v : series[static_cast<int>(m)]) summary.add(v);
    std::printf("  %-12s mean %.4f  stddev %.4f\n",
                std::string(metric_name(m)).c_str(), summary.mean(),
                summary.stddev());
  }

  // Pairwise Pearson correlation between the metric time series.
  std::printf("\npairwise temporal correlation (paper: weak):\n");
  const auto pearson = [](const std::vector<double>& a,
                          const std::vector<double>& b) {
    StreamingSummary sa, sb;
    for (const double v : a) sa.add(v);
    for (const double v : b) sb.add(v);
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
    }
    cov /= static_cast<double>(a.size() - 1);
    const double denom = sa.stddev() * sb.stddev();
    return denom == 0.0 ? 0.0 : cov / denom;
  };
  for (int a = 0; a < kNumMetrics; ++a) {
    for (int b = a + 1; b < kNumMetrics; ++b) {
      std::printf("  %-12s vs %-12s r = %+.3f\n",
                  std::string(metric_name(static_cast<Metric>(a))).c_str(),
                  std::string(metric_name(static_cast<Metric>(b))).c_str(),
                  pearson(series[a], series[b]));
    }
  }
  return 0;
}
