// Figure 11: fraction of problem sessions alleviated by fixing the top-k
// critical clusters, ranked by (a) prevalence, (b) persistence,
// (c) coverage.
//
// Paper shape targets: a Pareto pattern — the top 1% by coverage alleviates
// up to ~60% (join failure); coverage ranking dominates prevalence and
// persistence rankings; join failure/join time benefit more than buffering
// ratio/bitrate.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const WhatIfAnalyzer whatif{exp.result};

  bench::print_header(
      "Figure 11: alleviation from fixing the top-k critical clusters",
      "Pareto: top 1% by coverage alleviates 15-55% (join failure ~55%); "
      "coverage ranking dominates");

  const double fractions[] = {0.0001, 0.001, 0.01,  0.05, 0.1,
                              0.25,   0.5,   0.75,  1.0};

  for (const RankBy rank :
       {RankBy::kPrevalence, RankBy::kPersistence, RankBy::kCoverage}) {
    std::printf("(%s ranking)\n", std::string(rank_by_name(rank)).c_str());
    std::printf("%12s", "top_frac");
    for (const Metric m : kAllMetrics) {
      std::printf(" %12s", std::string(metric_name(m)).c_str());
    }
    std::printf("\n");
    std::array<std::vector<WhatIfAnalyzer::SweepPoint>, kNumMetrics> sweeps;
    for (const Metric m : kAllMetrics) {
      sweeps[static_cast<int>(m)] = whatif.topk_sweep(m, rank, fractions);
    }
    for (std::size_t i = 0; i < std::size(fractions); ++i) {
      std::printf("%12.4f", fractions[i]);
      for (const Metric m : kAllMetrics) {
        std::printf(" %12.4f",
                    sweeps[static_cast<int>(m)][i].alleviated_fraction);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("shape checks:\n");
  const double one_pct[] = {0.01};
  for (const Metric m : kAllMetrics) {
    const auto cov = whatif.topk_sweep(m, RankBy::kCoverage, one_pct);
    const auto prev = whatif.topk_sweep(m, RankBy::kPrevalence, one_pct);
    std::printf("  %-12s top-1%% by coverage alleviates %5.1f%% "
                "(paper 15-55%%); coverage >= prevalence ranking: %s\n",
                std::string(metric_name(m)).c_str(),
                100.0 * cov[0].alleviated_fraction,
                cov[0].alleviated_fraction >=
                        prev[0].alleviated_fraction - 1e-9
                    ? "yes"
                    : "NO");
  }
  return 0;
}
