// Table 1: mean problem-cluster and critical-cluster counts per epoch, and
// the fraction of problem sessions covered by each.
//
// Paper row shape (week 1, 300M sessions):
//   metric       problem  critical(%)    pc-coverage  cc-coverage(%)
//   BufRatio       10433     286 (2%)          0.80     0.66 (82%)
//   JoinTime        9953     247 (2%)          0.86     0.83 (96%)
//   JoinFailure     9620     302 (3%)          0.87     0.84 (96%)
//   Bitrate         9437     287 (3%)          0.57     0.44 (77%)

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Table 1: critical clusters are ~50x fewer than problem clusters yet "
      "cover most clustered problem sessions",
      "2-3% as many critical clusters; coverage 0.44-0.84 of problem "
      "sessions (77-96% of the problem-cluster coverage)");

  struct PaperRow {
    Metric metric;
    double problem_clusters;
    double critical_clusters;
    double pc_coverage;
    double cc_coverage;
  };
  constexpr PaperRow kPaper[] = {
      {Metric::kBufRatio, 10433, 286, 0.80, 0.66},
      {Metric::kJoinTime, 9953, 247, 0.86, 0.83},
      {Metric::kJoinFailure, 9620, 302, 0.87, 0.84},
      {Metric::kBitrate, 9437, 287, 0.57, 0.44},
  };

  std::printf("%-12s | %26s | %26s\n", "", "paper", "measured");
  std::printf("%-12s | %8s %8s %4s %4s | %8s %8s %4s %4s\n", "metric", "#prob",
              "#crit", "pcC", "ccC", "#prob", "#crit", "pcC", "ccC");
  for (const PaperRow& row : kPaper) {
    const auto agg = exp.result.aggregates(row.metric);
    std::printf(
        "%-12s | %8.0f %8.0f %4.2f %4.2f | %8.1f %8.1f %4.2f %4.2f\n",
        std::string(metric_name(row.metric)).c_str(), row.problem_clusters,
        row.critical_clusters, row.pc_coverage, row.cc_coverage,
        agg.mean_problem_clusters, agg.mean_critical_clusters,
        agg.mean_problem_coverage, agg.mean_critical_coverage);
  }

  std::printf("\nshape checks:\n");
  for (const PaperRow& row : kPaper) {
    const auto agg = exp.result.aggregates(row.metric);
    const double reduction =
        agg.mean_problem_clusters > 0
            ? agg.mean_critical_clusters / agg.mean_problem_clusters
            : 0.0;
    std::printf("  %-12s critical/problem clusters = %5.1f%% (paper 2-3%%), "
                "cc/pc coverage = %5.1f%% (paper 77-96%%)\n",
                std::string(metric_name(row.metric)).c_str(),
                100.0 * reduction,
                agg.mean_problem_coverage > 0
                    ? 100.0 * agg.mean_critical_coverage /
                          agg.mean_problem_coverage
                    : 0.0);
  }
  return 0;
}
