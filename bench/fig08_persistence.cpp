// Figure 8: inverse CDF of the median (a) and max (b) persistence of
// problem clusters, in hours.
//
// Paper shape targets: >50-60% of problem clusters have a median event
// duration >= 2 hours (3 of 4 metrics); >1% of clusters have a peak streak
// longer than a day.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/prevalence.h"

namespace {

void print_inverse_cdf(const char* title,
                       const std::array<std::vector<double>, 4>& values) {
  using namespace vq;
  std::printf("%s\nfraction of problem clusters with persistence >= h\n",
              title);
  std::printf("%10s", "hours");
  for (const Metric m : kAllMetrics) {
    std::printf(" %12s", std::string(metric_name(m)).c_str());
  }
  std::printf("\n");
  for (const double h : {1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 48.0, 96.0}) {
    std::printf("%10.0f", h);
    for (int m = 0; m < kNumMetrics; ++m) {
      std::size_t above = 0;
      for (const double v : values[m]) {
        if (v >= h) ++above;
      }
      std::printf(" %12.4f",
                  values[m].empty() ? 0.0
                                    : static_cast<double>(above) /
                                          static_cast<double>(
                                              values[m].size()));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Figure 8: persistence of problem clusters",
      ">50% of clusters with median streak >= 2h; ~1% with peak streak > 1 "
      "day");

  std::array<std::vector<double>, 4> medians;
  std::array<std::vector<double>, 4> maxes;
  for (const Metric m : kAllMetrics) {
    const auto report = build_prevalence(
        problem_cluster_keys(exp.result, m), exp.result.num_epochs);
    medians[static_cast<int>(m)] = report.median_persistences();
    maxes[static_cast<int>(m)] = report.max_persistences();
  }

  print_inverse_cdf("(a) median persistence", medians);
  print_inverse_cdf("(b) max persistence", maxes);

  std::printf("shape checks (paper -> measured):\n");
  for (const Metric m : kAllMetrics) {
    const auto& med = medians[static_cast<int>(m)];
    const auto& mx = maxes[static_cast<int>(m)];
    std::size_t med2 = 0;
    std::size_t day = 0;
    for (const double v : med) {
      if (v >= 2.0) ++med2;
    }
    for (const double v : mx) {
      if (v > 24.0) ++day;
    }
    std::printf(
        "  %-12s median>=2h: >50%% -> %5.1f%% ; max>1day: ~1%% -> %5.2f%%\n",
        std::string(metric_name(m)).c_str(),
        med.empty() ? 0.0 : 100.0 * med2 / static_cast<double>(med.size()),
        mx.empty() ? 0.0 : 100.0 * day / static_cast<double>(mx.size()));
  }
  return 0;
}
