// Engine microbenchmarks (google-benchmark): cluster-key packing, the flat
// hash map against std::unordered_map, lattice aggregation at several arity
// caps, critical-cluster extraction, and end-to-end epoch analysis.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "src/core/critical_cluster.h"
#include "src/core/pipeline.h"
#include "src/gen/tracegen.h"
#include "src/util/flat_hash_map.h"

namespace vq {
namespace {

const SessionTable& bench_trace() {
  static const SessionTable trace = [] {
    WorldConfig world_config;
    world_config.num_asns = 1'000;
    const World world = World::build(world_config);
    EventScheduleConfig event_config;
    event_config.num_epochs = 4;
    const EventSchedule events = EventSchedule::generate(world, event_config);
    TraceConfig trace_config;
    trace_config.num_epochs = 4;
    trace_config.sessions_per_epoch = 5'000;
    return generate_trace(world, events, trace_config);
  }();
  return trace;
}

void BM_ClusterKeyPackProject(benchmark::State& state) {
  AttrVec attrs;
  attrs[AttrDim::kSite] = 123;
  attrs[AttrDim::kCdn] = 7;
  attrs[AttrDim::kAsn] = 4321;
  attrs[AttrDim::kConnType] = 3;
  for (auto _ : state) {
    const ClusterKey leaf = ClusterKey::pack(kFullMask, attrs);
    std::uint64_t acc = 0;
    for (unsigned mask = 1; mask <= kFullMask; ++mask) {
      acc ^= leaf.project(static_cast<std::uint8_t>(mask)).raw();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 127);
}
BENCHMARK(BM_ClusterKeyPackProject);

void BM_FlatMap64Upsert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    FlatMap64<std::uint64_t> map;
    map.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      map[splitmix64(i) >> 16] += i;
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FlatMap64Upsert)->Arg(1'000)->Arg(100'000);

void BM_UnorderedMapUpsert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    map.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      map[splitmix64(i) >> 16] += i;
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_UnorderedMapUpsert)->Arg(1'000)->Arg(100'000);

void BM_AggregateEpoch(benchmark::State& state) {
  const SessionTable& trace = bench_trace();
  const ProblemThresholds thresholds;
  ClusterEngineConfig config;
  config.max_arity = static_cast<int>(state.range(0));
  const auto sessions = trace.epoch(0);
  for (auto _ : state) {
    const auto table = aggregate_epoch(sessions, thresholds, config, 0);
    benchmark::DoNotOptimize(table.clusters.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(sessions.size()));
}
BENCHMARK(BM_AggregateEpoch)->Arg(2)->Arg(4)->Arg(7);

void BM_CriticalClusters(benchmark::State& state) {
  const SessionTable& trace = bench_trace();
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 100};
  const auto sessions = trace.epoch(0);
  const auto table = aggregate_epoch(sessions, thresholds, {}, 0);
  for (auto _ : state) {
    const auto analysis = find_critical_clusters(
        sessions, table, thresholds, params, Metric::kBufRatio);
    benchmark::DoNotOptimize(analysis.criticals.size());
  }
}
BENCHMARK(BM_CriticalClusters);

void BM_FullPipelinePerEpoch(benchmark::State& state) {
  const SessionTable& trace = bench_trace();
  PipelineConfig config;
  config.cluster_params.min_sessions = 100;
  for (auto _ : state) {
    const PipelineResult result = run_pipeline(trace, config);
    benchmark::DoNotOptimize(result.num_epochs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(trace.size()));
}
BENCHMARK(BM_FullPipelinePerEpoch);

void BM_TraceGeneration(benchmark::State& state) {
  WorldConfig world_config;
  world_config.num_asns = 1'000;
  const World world = World::build(world_config);
  const EventSchedule events = EventSchedule::none(1);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch =
      static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto sessions = generate_epoch(world, events, trace_config, 0);
    benchmark::DoNotOptimize(sessions.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(1'000)->Arg(10'000);

}  // namespace
}  // namespace vq

BENCHMARK_MAIN();
