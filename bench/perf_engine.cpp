// Engine microbenchmarks (google-benchmark): cluster-key packing, the flat
// hash map against std::unordered_map, lattice aggregation at several arity
// caps, critical-cluster extraction, and end-to-end epoch analysis.

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "src/core/critical_cluster.h"
#include "src/core/pipeline.h"
#include "src/gen/tracegen.h"
#include "src/util/flat_hash_map.h"
#include "src/util/thread_pool.h"

namespace vq {
namespace {

const SessionTable& bench_trace() {
  static const SessionTable trace = [] {
    WorldConfig world_config;
    world_config.num_asns = 1'000;
    const World world = World::build(world_config);
    EventScheduleConfig event_config;
    event_config.num_epochs = 4;
    const EventSchedule events = EventSchedule::generate(world, event_config);
    TraceConfig trace_config;
    trace_config.num_epochs = 4;
    trace_config.sessions_per_epoch = 5'000;
    return generate_trace(world, events, trace_config);
  }();
  return trace;
}

void BM_ClusterKeyPackProject(benchmark::State& state) {
  AttrVec attrs;
  attrs[AttrDim::kSite] = 123;
  attrs[AttrDim::kCdn] = 7;
  attrs[AttrDim::kAsn] = 4321;
  attrs[AttrDim::kConnType] = 3;
  for (auto _ : state) {
    const ClusterKey leaf = ClusterKey::pack(kFullMask, attrs);
    std::uint64_t acc = 0;
    for (unsigned mask = 1; mask <= kFullMask; ++mask) {
      acc ^= leaf.project(static_cast<std::uint8_t>(mask)).raw();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 127);
}
BENCHMARK(BM_ClusterKeyPackProject);

void BM_FlatMap64Upsert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    FlatMap64<std::uint64_t> map;
    map.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      map[splitmix64(i) >> 16] += i;
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FlatMap64Upsert)->Arg(1'000)->Arg(100'000);

void BM_UnorderedMapUpsert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    map.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      map[splitmix64(i) >> 16] += i;
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_UnorderedMapUpsert)->Arg(1'000)->Arg(100'000);

void BM_AggregateEpoch(benchmark::State& state) {
  const SessionTable& trace = bench_trace();
  const ProblemThresholds thresholds;
  ClusterEngineConfig config;
  config.max_arity = static_cast<int>(state.range(0));
  const auto sessions = trace.epoch(0);
  for (auto _ : state) {
    const auto table = aggregate_epoch(sessions, thresholds, config, 0);
    benchmark::DoNotOptimize(table.clusters.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(sessions.size()));
}
BENCHMARK(BM_AggregateEpoch)->Arg(2)->Arg(4)->Arg(7);

/// An epoch with a controlled sessions-per-leaf ratio: `num_sessions`
/// sessions cycling over exactly `distinct_leaves` attribute combinations.
/// This is the knob the folded engine's win depends on.
std::vector<Session> leaf_ratio_epoch(std::size_t num_sessions,
                                      std::size_t distinct_leaves) {
  std::vector<Session> sessions;
  sessions.reserve(num_sessions);
  for (std::size_t i = 0; i < num_sessions; ++i) {
    const std::uint64_t j = i % distinct_leaves;
    Session s;
    s.epoch = 0;
    s.attrs[AttrDim::kSite] = static_cast<std::uint16_t>(j & 0x3F);
    s.attrs[AttrDim::kCdn] = static_cast<std::uint16_t>((j >> 6) & 0x7);
    s.attrs[AttrDim::kAsn] = static_cast<std::uint16_t>(j >> 9);
    s.attrs[AttrDim::kConnType] = static_cast<std::uint16_t>(j % 3);
    s.attrs[AttrDim::kPlayer] = static_cast<std::uint16_t>(j % 5);
    s.attrs[AttrDim::kBrowser] = static_cast<std::uint16_t>(j % 4);
    s.attrs[AttrDim::kVodLive] = static_cast<std::uint16_t>(j & 1);
    s.quality.bitrate_kbps = 2'000.0F;
    s.quality.buffering_ratio = (i % 8 == 0) ? 0.2F : 0.0F;
    sessions.push_back(s);
  }
  return sessions;
}

constexpr std::size_t kLeafRatioSessions = 50'000;

void BM_AggregateEpochUnfoldedByLeafRatio(benchmark::State& state) {
  const auto ratio = static_cast<std::size_t>(state.range(0));
  const std::vector<Session> sessions =
      leaf_ratio_epoch(kLeafRatioSessions, kLeafRatioSessions / ratio);
  const ProblemThresholds thresholds;
  for (auto _ : state) {
    const auto table = aggregate_epoch_unfolded(sessions, thresholds, {}, 0);
    benchmark::DoNotOptimize(table.clusters.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(sessions.size()));
}
BENCHMARK(BM_AggregateEpochUnfoldedByLeafRatio)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_AggregateEpochFoldedByLeafRatio(benchmark::State& state) {
  const auto ratio = static_cast<std::size_t>(state.range(0));
  const std::vector<Session> sessions =
      leaf_ratio_epoch(kLeafRatioSessions, kLeafRatioSessions / ratio);
  const ProblemThresholds thresholds;
  for (auto _ : state) {
    const LeafFold fold = fold_sessions(sessions, thresholds, 0);
    const auto table = expand_fold(fold, {});
    benchmark::DoNotOptimize(table.clusters.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(sessions.size()));
}
BENCHMARK(BM_AggregateEpochFoldedByLeafRatio)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ExpandFoldSharded(benchmark::State& state) {
  // Pass-2 expansion alone over a pre-built fold, at several shard counts
  // (shards=1 is the serial expansion baseline).
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::vector<Session> sessions =
      leaf_ratio_epoch(kLeafRatioSessions, kLeafRatioSessions / 4);
  const LeafFold fold = fold_sessions(sessions, {}, 0);
  ThreadPool pool{4};
  for (auto _ : state) {
    const auto table = expand_fold(fold, {}, &pool, shards);
    benchmark::DoNotOptimize(table.clusters.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(fold.leaves.size()) * 127);
}
BENCHMARK(BM_ExpandFoldSharded)->Arg(1)->Arg(2)->Arg(4);

// --- critical extraction: hashed baseline vs indexed strategy ---------------
// Shared fixture: one fold + one indexed table per process, so the loops
// time extraction alone (not aggregation).

struct CriticalFixture {
  LeafFold fold;
  EpochClusterTable table;
  ProblemClusterParams params{.ratio_multiplier = 1.5, .min_sessions = 100};
};

const CriticalFixture& critical_fixture() {
  static const CriticalFixture fixture = [] {
    CriticalFixture f;
    f.fold = fold_sessions(bench_trace().epoch(0), {}, 0);
    f.table = expand_fold(f.fold, {});
    return f;
  }();
  return fixture;
}

void BM_CriticalHash(benchmark::State& state) {
  const CriticalFixture& f = critical_fixture();
  for (auto _ : state) {
    const auto analysis = find_critical_clusters_hashed(
        f.fold, f.table, f.params, Metric::kBufRatio);
    benchmark::DoNotOptimize(analysis.criticals.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(f.fold.leaves.size()));
}
BENCHMARK(BM_CriticalHash);

void BM_CriticalIndexed(benchmark::State& state) {
  const CriticalFixture& f = critical_fixture();
  for (auto _ : state) {
    const auto analysis =
        find_critical_clusters_indexed(f.table, f.params, Metric::kBufRatio);
    benchmark::DoNotOptimize(analysis.criticals.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(f.fold.leaves.size()));
}
BENCHMARK(BM_CriticalIndexed);

void BM_CriticalIndexedSharded(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const CriticalFixture& f = critical_fixture();
  ThreadPool pool{4};
  for (auto _ : state) {
    const auto analysis = find_critical_clusters_indexed(
        f.table, f.params, Metric::kBufRatio, &pool, shards);
    benchmark::DoNotOptimize(analysis.criticals.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(f.fold.leaves.size()));
}
BENCHMARK(BM_CriticalIndexedSharded)->Arg(2)->Arg(4);

void BM_CriticalHashByLeafRatio(benchmark::State& state) {
  const auto ratio = static_cast<std::size_t>(state.range(0));
  const std::vector<Session> sessions =
      leaf_ratio_epoch(kLeafRatioSessions, kLeafRatioSessions / ratio);
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 100};
  const LeafFold fold = fold_sessions(sessions, {}, 0);
  const EpochClusterTable table = expand_fold(fold, {});
  for (auto _ : state) {
    const auto analysis =
        find_critical_clusters_hashed(fold, table, params, Metric::kBufRatio);
    benchmark::DoNotOptimize(analysis.criticals.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(fold.leaves.size()));
}
BENCHMARK(BM_CriticalHashByLeafRatio)->Arg(4)->Arg(16);

void BM_CriticalIndexedByLeafRatio(benchmark::State& state) {
  const auto ratio = static_cast<std::size_t>(state.range(0));
  const std::vector<Session> sessions =
      leaf_ratio_epoch(kLeafRatioSessions, kLeafRatioSessions / ratio);
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 100};
  const LeafFold fold = fold_sessions(sessions, {}, 0);
  const EpochClusterTable table = expand_fold(fold, {});
  for (auto _ : state) {
    const auto analysis =
        find_critical_clusters_indexed(table, params, Metric::kBufRatio);
    benchmark::DoNotOptimize(analysis.criticals.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(fold.leaves.size()));
}
BENCHMARK(BM_CriticalIndexedByLeafRatio)->Arg(4)->Arg(16);

void BM_FullPipelinePerEpoch(benchmark::State& state) {
  const SessionTable& trace = bench_trace();
  PipelineConfig config;
  config.cluster_params.min_sessions = 100;
  for (auto _ : state) {
    const PipelineResult result = run_pipeline(trace, config);
    benchmark::DoNotOptimize(result.num_epochs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(trace.size()));
}
BENCHMARK(BM_FullPipelinePerEpoch);

void BM_TraceGeneration(benchmark::State& state) {
  WorldConfig world_config;
  world_config.num_asns = 1'000;
  const World world = World::build(world_config);
  const EventSchedule events = EventSchedule::none(1);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch =
      static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto sessions = generate_epoch(world, events, trace_config, 0);
    benchmark::DoNotOptimize(sessions.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(1'000)->Arg(10'000);

}  // namespace
}  // namespace vq

BENCHMARK_MAIN();
