// Standalone critical-extraction benchmark: times the hashed baseline
// against the indexed strategy (serial and sharded) on one realistic epoch
// and writes the numbers to BENCH_critical.json.
//
// Unlike the google-benchmark microbenches (perf_engine), this harness is a
// plain main() so CI can run it in smoke mode and the JSON can be checked
// in as the PR's perf evidence.
//
//   usage: perf_critical [--smoke] [output.json]
//
//   VIDQUAL_CRIT_SESSIONS  sessions in the benchmarked epoch (default 200000)
//   VIDQUAL_CRIT_REPS      timed repetitions per strategy    (default 20)
//   VIDQUAL_CRIT_SHARDS    shard count for the sharded run   (default 4)
//
// Smoke mode shrinks both knobs so the whole binary finishes in seconds; it
// still exercises every strategy and the equality check.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "src/core/critical_cluster.h"
#include "src/gen/tracegen.h"
#include "src/util/thread_pool.h"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

/// Seconds for `reps` runs of `body` (one warmup run first).
template <typename F>
double time_reps(std::size_t reps, F&& body) {
  body();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vq;

  bool smoke = false;
  std::string out_path = "BENCH_critical.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const auto sessions_n = static_cast<std::uint32_t>(
      env_u64("VIDQUAL_CRIT_SESSIONS", smoke ? 20'000 : 200'000));
  const auto reps =
      static_cast<std::size_t>(env_u64("VIDQUAL_CRIT_REPS", smoke ? 3 : 20));
  const auto shards =
      static_cast<std::size_t>(env_u64("VIDQUAL_CRIT_SHARDS", 4));

  // One epoch over a compact attribute universe: leaves repeat heavily,
  // clusters clear the significance floor — the regime the paper's traces
  // live in and the one both strategies are built for.
  WorldConfig world_config;
  world_config.num_sites = 20;
  world_config.num_cdns = 3;
  world_config.num_asns = 50;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 1;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch = sessions_n;
  trace_config.diurnal_amplitude = 0.0;
  const SessionTable trace = generate_trace(world, events, trace_config);

  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 150};
  const LeafFold fold = fold_sessions(trace.epoch(0), thresholds, 0);
  const EpochClusterTable table = expand_fold(fold, {});
  ThreadPool pool{shards};

  std::printf("perf_critical: %zu sessions, %zu leaves, %zu cells, %zu reps\n",
              trace.size(), fold.leaves.size(), table.clusters.size(), reps);

  // A "rep" covers all four metrics, matching what the pipeline does per
  // epoch — so reps/sec is directly epochs/sec of critical extraction.
  const double hash_s = time_reps(reps, [&] {
    for (const Metric m : kAllMetrics) {
      const auto a = find_critical_clusters_hashed(fold, table, params, m);
      if (a.criticals.empty() && a.num_problem_clusters > 0) std::abort();
    }
  });
  const double indexed_s = time_reps(reps, [&] {
    for (const Metric m : kAllMetrics) {
      const auto a = find_critical_clusters_indexed(table, params, m);
      if (a.criticals.empty() && a.num_problem_clusters > 0) std::abort();
    }
  });
  const double sharded_s = time_reps(reps, [&] {
    for (const Metric m : kAllMetrics) {
      const auto a =
          find_critical_clusters_indexed(table, params, m, &pool, shards);
      if (a.criticals.empty() && a.num_problem_clusters > 0) std::abort();
    }
  });

  // Differential sanity: strategies must agree exactly before the numbers
  // mean anything (the full check lives in test_critical_differential.cpp).
  std::size_t criticals = 0;
  for (const Metric m : kAllMetrics) {
    const auto h = find_critical_clusters_hashed(fold, table, params, m);
    const auto x =
        find_critical_clusters_indexed(table, params, m, &pool, shards);
    if (h.criticals.size() != x.criticals.size() ||
        h.attributed_mass != x.attributed_mass ||
        h.problem_cluster_keys != x.problem_cluster_keys) {
      std::fprintf(stderr, "FATAL: strategies disagree on metric %d\n",
                   static_cast<int>(m));
      return 1;
    }
    criticals += h.criticals.size();
  }

  const double n = static_cast<double>(reps);
  const double hash_eps = n / hash_s;
  const double indexed_eps = n / indexed_s;
  const double sharded_eps = n / sharded_s;
  const double speedup = indexed_eps / hash_eps;

  std::printf("  hashed          : %8.2f epochs/sec\n", hash_eps);
  std::printf("  indexed         : %8.2f epochs/sec  (%.2fx)\n", indexed_eps,
              speedup);
  std::printf("  indexed x%zu     : %8.2f epochs/sec  (%.2fx)\n", shards,
              sharded_eps, sharded_eps / hash_eps);

  std::ofstream out{out_path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"critical_extraction\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"sessions\": " << trace.size() << ",\n"
      << "  \"distinct_leaves\": " << fold.leaves.size() << ",\n"
      << "  \"lattice_cells\": " << table.clusters.size() << ",\n"
      << "  \"critical_clusters\": " << criticals << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"hash_epochs_per_sec\": " << hash_eps << ",\n"
      << "  \"indexed_epochs_per_sec\": " << indexed_eps << ",\n"
      << "  \"indexed_sharded_epochs_per_sec\": " << sharded_eps << ",\n"
      << "  \"speedup_indexed_vs_hash\": " << speedup << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
