// Extension 4: closing the loop the paper left open — §5 concedes "we
// cannot conclusively say that (a) the specific sessions we consider are
// actually fixable". With a mechanistic substrate we can apply concrete
// remedies to the top critical clusters, RE-SIMULATE the trace (identical
// random streams), and compare the measured improvement against the §5
// model's predicted alleviation.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/overlap.h"
#include "src/core/whatif.h"
#include "src/gen/diagnose.h"
#include "src/gen/tracegen.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const WhatIfAnalyzer whatif{exp.result};

  bench::print_header(
      "Extension 4: re-simulated remedy validation (closes the paper's §5 "
      "caveat)",
      "the model's 'reduce to global average' prediction is in the right "
      "range: concrete remedies recover a comparable share of problem "
      "sessions");

  // Pick the top coverage clusters per metric and derive a concrete remedy
  // for each from its diagnosis.
  std::vector<Remedy> remedies;
  std::printf("remedies applied (top-3 critical clusters per metric):\n");
  for (const Metric m : kAllMetrics) {
    const auto top = top_critical_keys(exp.result, m, 3);
    for (const std::uint64_t raw : top) {
      const ClusterKey key = ClusterKey::from_raw(raw);
      const Diagnosis diag = diagnose_cluster(key, exp.world);
      Remedy remedy;
      remedy.scope = key;
      switch (diag.category) {
        case CauseCategory::kInHouseCdn:
        case CauseCategory::kOverloadedCdn:
        case CauseCategory::kPoorIsp:
        case CauseCategory::kNonUsRegion:
          remedy.action = RemedyAction::kSwitchToBestCdn;
          break;
        case CauseCategory::kSingleBitrateSite:
          remedy.action = RemedyAction::kAddBitrateLadder;
          break;
        case CauseCategory::kRemoteModulesSite:
          remedy.action = RemedyAction::kLocalizePlayerModules;
          break;
        default:
          remedy.action = RemedyAction::kSuppressEvents;
          break;
      }
      remedies.push_back(remedy);
      std::printf("  %-40s %-22s -> %s\n",
                  exp.world.schema().describe(key).c_str(),
                  std::string(cause_category_name(diag.category)).c_str(),
                  remedy.action == RemedyAction::kSwitchToBestCdn
                      ? "switch to best CDN"
                      : remedy.action == RemedyAction::kAddBitrateLadder
                            ? "add bitrate ladder"
                            : remedy.action ==
                                      RemedyAction::kLocalizePlayerModules
                                  ? "localize player modules"
                                  : "repair root cause");
    }
  }

  // Re-simulate with remedies; need the same generation inputs as the
  // default experiment, so rebuild them from the environment knobs.
  std::fprintf(stderr, "[bench] re-simulating remedied trace...\n");
  TraceConfig trace_config;
  trace_config.num_epochs = exp.result.num_epochs;
  trace_config.sessions_per_epoch = static_cast<std::uint32_t>(
      bench::env_u64("VIDQUAL_SESSIONS_PER_EPOCH", 8000));
  trace_config.seed = bench::env_u64("VIDQUAL_SEED", 2013) + 2;
  const SessionTable remedied =
      generate_trace(exp.world, exp.events, trace_config, remedies);
  const PipelineResult remedied_result = run_pipeline(remedied, exp.config);

  std::printf("\npredicted (model) vs measured (re-simulated) problem-"
              "session reduction:\n");
  std::printf("%-12s %12s %12s %12s %12s\n", "metric", "original",
              "predicted", "measured", "after-fix");
  for (const Metric m : kAllMetrics) {
    const double original = static_cast<double>(
        exp.result.total_problem_sessions(m, 0, exp.result.num_epochs));
    const double after = static_cast<double>(
        remedied_result.total_problem_sessions(m, 0,
                                               remedied_result.num_epochs));
    // Model prediction: sum the alleviated mass of the chosen clusters.
    std::vector<std::uint64_t> chosen;
    for (const Remedy& r : remedies) chosen.push_back(r.scope.raw());
    const std::size_t distinct = whatif.distinct_critical_count(m);
    const auto top = top_critical_keys(exp.result, m, 3);
    double fraction_keys =
        distinct == 0 ? 0.0
                      : static_cast<double>(top.size()) /
                            static_cast<double>(distinct);
    const double fractions[] = {fraction_keys};
    const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, fractions);
    const double predicted = sweep[0].alleviated_fraction * original;

    std::printf("%-12s %12.0f %11.0f%% %11.0f%% %12.0f\n",
                std::string(metric_name(m)).c_str(), original,
                original > 0 ? 100.0 * predicted / original : 0.0,
                original > 0 ? 100.0 * (original - after) / original : 0.0,
                after);
  }
  std::printf("\nnotes: remedies for one metric's clusters also help other "
              "metrics (a real CDN switch fixes failures AND buffering), so "
              "measured reductions can exceed the per-metric prediction; "
              "remedies can also fall short when the concrete action does "
              "not fully remove the cause (e.g. the best commercial CDN is "
              "itself loaded at peak).\n");
  return 0;
}
