// Ablation 1: the paper's critical-cluster detector vs the Hierarchical
// Heavy Hitters baseline (§7 argues HHH "is not directly applicable" —
// here we quantify that against the planted ground truth).
//
// Both detectors run per epoch; a detection is a hit when it equals or
// refines/coarsens an event scope active in that epoch. We report
// precision-like and recall-like scores for both, plus parent-attribution
// quality: HHH tends to report many overlapping cells per cause, the
// critical-cluster method one minimal cell.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "src/baseline/hhh.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Ablation 1: critical clusters vs hierarchical heavy hitters",
      "critical clusters attribute each cause to one minimal cluster; HHH "
      "volume-counting reports more clusters per true cause");

  const auto matches = [](const ClusterKey& detected,
                          const ClusterKey& scope) {
    return scope.generalizes(detected) || detected.generalizes(scope);
  };

  HhhParams hhh_params;
  hhh_params.phi = 0.05;

  double critical_detections = 0;
  double critical_hits = 0;
  double hhh_detections = 0;
  double hhh_hits = 0;
  std::set<std::size_t> critical_events_found;
  std::set<std::size_t> hhh_events_found;
  std::set<std::size_t> scorable_events;

  const std::uint32_t epochs = std::min(exp.result.num_epochs, 120u);
  for (std::uint32_t e = 0; e < epochs; ++e) {
    const auto active = exp.events.active_at(e);
    for (std::size_t i = 0; i < active.size(); ++i) {
      scorable_events.insert(active[i]);
    }

    for (const Metric m : kAllMetrics) {
      for (const auto& c : exp.result.at(m, e).analysis.criticals) {
        ++critical_detections;
        for (const std::uint32_t idx : active) {
          if (matches(c.key, exp.events.events()[idx].scope)) {
            ++critical_hits;
            critical_events_found.insert(idx);
            break;
          }
        }
      }
      const auto hhh = find_hhh(exp.trace.epoch(e), exp.config.thresholds,
                                hhh_params, m);
      for (const auto& h : hhh) {
        ++hhh_detections;
        for (const std::uint32_t idx : active) {
          if (matches(h.key, exp.events.events()[idx].scope)) {
            ++hhh_hits;
            hhh_events_found.insert(idx);
            break;
          }
        }
      }
    }
  }

  const auto pct = [](double a, double b) {
    return b > 0 ? 100.0 * a / b : 0.0;
  };
  std::printf("epochs scored: %u; active planted events: %zu\n\n", epochs,
              scorable_events.size());
  std::printf("%-22s %16s %16s\n", "", "critical", "HHH");
  std::printf("%-22s %16.0f %16.0f\n", "detections", critical_detections,
              hhh_detections);
  std::printf("%-22s %15.1f%% %15.1f%%\n",
              "precision (vs events)",
              pct(critical_hits, critical_detections),
              pct(hhh_hits, hhh_detections));
  std::printf("%-22s %15.1f%% %15.1f%%\n", "event recall",
              pct(static_cast<double>(critical_events_found.size()),
                  static_cast<double>(scorable_events.size())),
              pct(static_cast<double>(hhh_events_found.size()),
                  static_cast<double>(scorable_events.size())));
  std::printf("%-22s %16.1f %16.1f\n", "detections per epoch",
              critical_detections / epochs / kNumMetrics,
              hhh_detections / epochs / kNumMetrics);
  std::printf(
      "\nnote: 'precision' counts detections matching a *dynamic* planted "
      "event; the remainder largely track chronic world structure (bad "
      "ISPs, in-house CDNs, single-bitrate sites), which both methods "
      "legitimately surface.\n");
  return 0;
}
