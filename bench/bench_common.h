// Shared setup for the per-figure/table bench harnesses.
//
// Every harness runs against the same "default experiment": a two-week
// synthetic world scaled for a laptop (overridable through environment
// variables).  Each binary prints the paper's reported numbers next to the
// measured ones; absolute values differ (synthetic substrate, ~150x fewer
// sessions) — the reproduction target is the SHAPE of every series.
//
// The default significance floor of 150 sessions follows the paper's own
// calibration rule: its 1.5x multiplier "roughly represents two standard
// deviations" of the per-cluster ratio distribution, which at a global
// problem ratio around 0.1 requires n >= 16*(1-p)/p ~= 150 sessions.
//
//   VIDQUAL_EPOCHS              number of hourly epochs   (default 336)
//   VIDQUAL_SESSIONS_PER_EPOCH  mean sessions per epoch   (default 8000)
//   VIDQUAL_MIN_SESSIONS        problem-cluster floor     (default 150)
//   VIDQUAL_SEED                master seed               (default 2013)

#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "src/core/pipeline.h"
#include "src/gen/events.h"
#include "src/gen/trace_io.h"
#include "src/gen/tracegen.h"
#include "src/gen/world.h"

namespace vq::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

struct Experiment {
  World world;
  EventSchedule events;
  SessionTable trace;
  PipelineConfig config;
  PipelineResult result;
};

// --- pipeline-result cache ---------------------------------------------------
// Like the trace cache below, this is output-neutral: run_pipeline is
// deterministic in (trace, config), so serialising its result lets the other
// 20+ bench binaries skip a minute of identical recomputation each.

namespace detail {

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error{"result cache: truncated"};
  return value;
}

inline void save_result(const std::filesystem::path& path,
                        const PipelineResult& result) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"result cache: cannot open for write"};
  out.write("VQPR", 4);
  put<std::uint32_t>(out, 3);  // version
  put<std::uint32_t>(out, result.num_epochs);
  put<std::uint32_t>(out, result.config.cluster_params.min_sessions);
  put<double>(out, result.config.cluster_params.ratio_multiplier);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const EpochMetricSummary& s = result.at(m, e);
      const CriticalAnalysis& a = s.analysis;
      put<std::uint64_t>(out, a.sessions);
      put<std::uint64_t>(out, a.problem_sessions);
      put<std::uint64_t>(out, a.problem_sessions_in_pc);
      put<double>(out, a.global_ratio);
      put<std::uint32_t>(out, a.num_problem_clusters);
      put<double>(out, a.attributed_mass);
      put<std::uint64_t>(out, a.criticals.size());
      for (const CriticalRecord& c : a.criticals) {
        put<std::uint64_t>(out, c.key.raw());
        put<double>(out, c.attributed);
        put<std::uint32_t>(out, c.stats.sessions);
        for (int i = 0; i < kNumMetrics; ++i) {
          put<std::uint32_t>(out, c.stats.problems[i]);
        }
      }
      put<std::uint64_t>(out, a.problem_cluster_keys.size());
      for (const std::uint64_t key : a.problem_cluster_keys) {
        put<std::uint64_t>(out, key);
      }
    }
  }
  if (!out) throw std::runtime_error{"result cache: write failed"};
}

inline PipelineResult load_result(const std::filesystem::path& path,
                                  const PipelineConfig& config) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"result cache: cannot open"};
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string_view{magic, 4} != "VQPR") {
    throw std::runtime_error{"result cache: bad magic"};
  }
  if (get<std::uint32_t>(in) != 3) {
    throw std::runtime_error{"result cache: version mismatch"};
  }
  PipelineResult result;
  result.config = config;
  result.num_epochs = get<std::uint32_t>(in);
  if (get<std::uint32_t>(in) != config.cluster_params.min_sessions ||
      get<double>(in) != config.cluster_params.ratio_multiplier) {
    throw std::runtime_error{"result cache: config mismatch"};
  }
  for (auto& v : result.per_metric) v.resize(result.num_epochs);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      EpochMetricSummary& s =
          result.per_metric[static_cast<std::uint8_t>(m)][e];
      CriticalAnalysis& a = s.analysis;
      a.epoch = e;
      a.metric = m;
      a.sessions = get<std::uint64_t>(in);
      a.problem_sessions = get<std::uint64_t>(in);
      a.problem_sessions_in_pc = get<std::uint64_t>(in);
      a.global_ratio = get<double>(in);
      a.num_problem_clusters = get<std::uint32_t>(in);
      a.attributed_mass = get<double>(in);
      const auto criticals = get<std::uint64_t>(in);
      a.criticals.resize(criticals);
      for (auto& c : a.criticals) {
        c.key = ClusterKey::from_raw(get<std::uint64_t>(in));
        c.attributed = get<double>(in);
        c.stats.sessions = get<std::uint32_t>(in);
        for (int i = 0; i < kNumMetrics; ++i) {
          c.stats.problems[i] = get<std::uint32_t>(in);
        }
      }
      const auto keys = get<std::uint64_t>(in);
      a.problem_cluster_keys.resize(keys);
      for (auto& key : a.problem_cluster_keys) {
        key = get<std::uint64_t>(in);
      }
    }
  }
  return result;
}

}  // namespace detail

/// Builds the default experiment once per process.
inline const Experiment& default_experiment() {
  static const Experiment experiment = [] {
    const auto epochs =
        static_cast<std::uint32_t>(env_u64("VIDQUAL_EPOCHS", 336));
    const auto per_epoch = static_cast<std::uint32_t>(
        env_u64("VIDQUAL_SESSIONS_PER_EPOCH", 8000));
    const auto min_sessions = static_cast<std::uint32_t>(
        env_u64("VIDQUAL_MIN_SESSIONS", 150));
    const std::uint64_t seed = env_u64("VIDQUAL_SEED", 2013);

    WorldConfig world_config;
    world_config.num_asns = 2000;
    world_config.seed = seed;
    World world = World::build(world_config);

    EventScheduleConfig event_config;
    event_config.num_epochs = epochs;
    event_config.seed = seed + 1;
    EventSchedule events = EventSchedule::generate(world, event_config);

    TraceConfig trace_config;
    trace_config.num_epochs = epochs;
    trace_config.sessions_per_epoch = per_epoch;
    trace_config.seed = seed + 2;

    // Generation is deterministic in the knobs, so a binary on-disk cache
    // is output-neutral: each bench binary in a `for b in bench/*` sweep
    // loads the identical trace instead of re-simulating it.
    const std::filesystem::path cache =
        std::filesystem::temp_directory_path() /
        ("vidqual_bench_" + std::to_string(epochs) + "_" +
         std::to_string(per_epoch) + "_" + std::to_string(seed) + ".vqtr");
    SessionTable trace;
    bool loaded = false;
    if (std::filesystem::exists(cache)) {
      try {
        std::fprintf(stderr, "[bench] loading cached trace %s...\n",
                     cache.string().c_str());
        trace = read_trace_binary(cache).table;
        loaded = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bench] cache unusable (%s); regenerating\n",
                     e.what());
      }
    }
    if (!loaded) {
      std::fprintf(stderr, "[bench] generating trace: %u epochs x ~%u...\n",
                   epochs, per_epoch);
      trace = generate_trace(world, events, trace_config);
      try {
        write_trace_binary(cache, trace, world.schema());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bench] could not cache trace: %s\n", e.what());
      }
    }

    PipelineConfig config;
    config.cluster_params.min_sessions = min_sessions;

    const std::filesystem::path result_cache =
        std::filesystem::temp_directory_path() /
        ("vidqual_bench_" + std::to_string(epochs) + "_" +
         std::to_string(per_epoch) + "_" + std::to_string(seed) + "_" +
         std::to_string(min_sessions) + ".vqpr");
    PipelineResult result;
    bool result_loaded = false;
    if (std::filesystem::exists(result_cache)) {
      try {
        std::fprintf(stderr, "[bench] loading cached pipeline result...\n");
        result = detail::load_result(result_cache, config);
        result_loaded = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bench] result cache unusable (%s)\n",
                     e.what());
      }
    }
    if (!result_loaded) {
      std::fprintf(stderr, "[bench] running pipeline on %zu sessions...\n",
                   trace.size());
      result = run_pipeline(trace, config);
      try {
        detail::save_result(result_cache, result);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bench] could not cache result: %s\n",
                     e.what());
      }
    }

    return Experiment{std::move(world), std::move(events), std::move(trace),
                      config, std::move(result)};
  }();
  return experiment;
}

inline void print_header(const char* experiment_id, const char* paper_claim) {
  std::printf("== %s ==\n", experiment_id);
  std::printf("paper: %s\n\n", paper_claim);
}

}  // namespace vq::bench
