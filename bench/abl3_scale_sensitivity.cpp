// Ablation 3: dataset-scale sensitivity.
//
// The paper operates at ~900K sessions/epoch with a 1000-session cluster
// floor; this repo defaults to ~8K/epoch with a 150-session floor.  This
// bench sweeps epoch density (holding the floor's *statistical* calibration
// fixed: min_sessions scales with sqrt-like significance, here linearly
// capped) and shows the problem:critical cluster ratio growing with scale —
// explaining why the paper sees ~50:1 where the default bench sees ~5-15:1.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/prevalence.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;

  bench::print_header(
      "Ablation 3: cluster-count scaling with dataset density",
      "problem clusters grow superlinearly with sessions/epoch while "
      "critical clusters track the (fixed) set of causes -> the paper's "
      "50:1 ratio is a scale effect");

  WorldConfig world_config;
  world_config.num_asns = 2000;
  const World world = World::build(world_config);

  const std::uint32_t epochs = 48;
  EventScheduleConfig event_config;
  event_config.num_epochs = epochs;
  const EventSchedule events = EventSchedule::generate(world, event_config);

  std::printf("%14s %12s %14s %14s %8s %14s\n", "sessions/epoch", "min_sess",
              "problem_clus", "critical_clus", "ratio", "med-persist>=2h");
  for (const std::uint32_t per_epoch : {2'000u, 4'000u, 8'000u, 16'000u}) {
    TraceConfig trace_config;
    trace_config.num_epochs = epochs;
    trace_config.sessions_per_epoch = per_epoch;
    const SessionTable trace = generate_trace(world, events, trace_config);

    PipelineConfig config;
    // Keep the floor at the same fraction of epoch traffic the default
    // bench uses (150 / 8000), mirroring the paper's ~1000 / 900K choice.
    config.cluster_params.min_sessions =
        std::max(30u, per_epoch * 150 / 8'000);
    const PipelineResult result = run_pipeline(trace, config);

    double problem = 0.0;
    double critical = 0.0;
    double persistent = 0.0;  // fraction of clusters with median streak >= 2h
    for (const Metric m : kAllMetrics) {
      const auto agg = result.aggregates(m);
      problem += agg.mean_problem_clusters;
      critical += agg.mean_critical_clusters;
      const auto report =
          build_prevalence(problem_cluster_keys(result, m),
                           result.num_epochs);
      std::size_t above = 0;
      for (const auto& t : report.timelines) {
        if (t.median_persistence >= 2) ++above;
      }
      persistent += report.timelines.empty()
                        ? 0.0
                        : static_cast<double>(above) /
                              static_cast<double>(report.timelines.size());
    }
    problem /= kNumMetrics;
    critical /= kNumMetrics;
    persistent /= kNumMetrics;
    std::printf("%14u %12u %14.1f %14.1f %7.1f:1 %13.1f%%\n", per_epoch,
                config.cluster_params.min_sessions, problem, critical,
                critical > 0 ? problem / critical : 0.0, 100.0 * persistent);
  }
  std::printf("\nexpected shape: the ratio column grows with density toward "
              "the paper's ~50:1, and the persistence column toward its "
              ">50%% — both are functions of per-cluster statistics "
              "stabilising as epochs carry more sessions.\n");
  return 0;
}
