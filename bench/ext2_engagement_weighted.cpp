// Extension 2 (paper §1 motivation): engagement-weighted remediation.
//
// The paper counts problem *sessions*; revenue follows engagement *minutes*
// (Dobrian et al.). This bench converts the trace's quality problems into
// expected lost viewing minutes, then compares cluster rankings by sessions
// vs by recoverable minutes.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/engagement.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const EngagementModel model;

  bench::print_header(
      "Extension 2: engagement-weighted what-if (paper §1 motivation)",
      "quantifies lost viewing minutes per cause and how closely the "
      "paper's session-count ranking tracks the revenue-weighted one "
      "(engagement ranking is >= by construction; a small gap means "
      "counting sessions is a sound proxy)");

  const EngagementReport report = engagement_report(exp.trace, model);
  std::printf("engagement loss over the trace: %.0f minutes total, %.2f "
              "min/session\n",
              report.total_lost_minutes,
              report.mean_lost_minutes_per_session);
  std::printf("decomposition by proximate cause:\n");
  for (const Metric m : kAllMetrics) {
    std::printf("  %-12s %12.0f min (%4.1f%%)\n",
                std::string(metric_name(m)).c_str(),
                report.lost_by_cause[static_cast<int>(m)],
                report.total_lost_minutes > 0
                    ? 100.0 * report.lost_by_cause[static_cast<int>(m)] /
                          report.total_lost_minutes
                    : 0.0);
  }

  std::fprintf(stderr, "[bench] computing engagement attribution...\n");
  const EngagementWhatIf whatif{exp.trace, exp.result, model};

  std::printf("\nminutes recovered: engagement-ranked vs session-ranked "
              "top-k clusters\n");
  std::printf("%-12s %8s %16s %16s %8s\n", "metric", "top", "by minutes",
              "by sessions", "gain");
  for (const Metric m : kAllMetrics) {
    for (const double fraction : {0.01, 0.05, 0.25}) {
      const auto cmp = whatif.compare_rankings(m, fraction);
      std::printf("%-12s %7.0f%% %16.0f %16.0f %7.1f%%\n",
                  std::string(metric_name(m)).c_str(), 100 * fraction,
                  cmp.minutes_engagement_ranked, cmp.minutes_session_ranked,
                  cmp.minutes_session_ranked > 0
                      ? 100.0 * (cmp.minutes_engagement_ranked /
                                     cmp.minutes_session_ranked -
                                 1.0)
                      : 0.0);
    }
  }

  std::printf("\ntop clusters by recoverable minutes (BufRatio):\n");
  const auto ranking = whatif.ranking(Metric::kBufRatio);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranking.size()); ++i) {
    std::printf("  %-36s %10.0f min %10.0f sessions\n",
                exp.world.schema().describe(ranking[i].key).c_str(),
                ranking[i].minutes_recovered,
                ranking[i].sessions_alleviated);
  }
  return 0;
}
