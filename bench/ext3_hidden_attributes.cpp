// Extension 3 (paper §6 "Hidden attributes"): geography as a derived
// dimension.
//
// Per-ASN analysis fragments regional problems across many individually
// insignificant ASNs; replacing the ASN dimension with the client's region
// re-aggregates that mass. This bench runs the pipeline on both views and
// compares how much problem mass the (coarse) geographic clusters explain.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/overlap.h"
#include "src/gen/derive.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Extension 3: geography as a derived attribute (paper §6)",
      "region-level clusters recover problem mass that per-ASN analysis "
      "fragments below significance");

  std::fprintf(stderr, "[bench] coarsening + re-running pipeline...\n");
  const SessionTable coarse = coarsen_asn_to_region(exp.trace, exp.world);
  const PipelineResult coarse_result = run_pipeline(coarse, exp.config);
  const AttributeSchema coarse_schema = region_schema(exp.world);

  std::printf("%-12s | %26s | %26s\n", "", "per-ASN lattice",
              "per-region lattice");
  std::printf("%-12s | %12s %12s | %12s %12s\n", "metric", "Asn-attr %",
              "cc-coverage", "Region-attr %", "cc-coverage");
  for (const Metric m : kAllMetrics) {
    const TypeBreakdown fine = critical_type_breakdown(exp.result, m);
    const TypeBreakdown coarse_b = critical_type_breakdown(coarse_result, m);
    const auto asn_share = [](const TypeBreakdown& b) {
      double total = 0.0;
      for (const auto& [mask, fraction] : b.by_mask) {
        if ((mask & dim_bit(AttrDim::kAsn)) != 0) total += fraction;
      }
      return total;
    };
    std::printf("%-12s | %11.1f%% %12.3f | %11.1f%% %12.3f\n",
                std::string(metric_name(m)).c_str(),
                100.0 * asn_share(fine),
                exp.result.aggregates(m).mean_critical_coverage,
                100.0 * asn_share(coarse_b),
                coarse_result.aggregates(m).mean_critical_coverage);
  }

  std::printf("\nmost-covered geographic critical clusters (BufRatio):\n");
  for (const std::uint64_t raw :
       top_critical_keys(coarse_result, Metric::kBufRatio, 8)) {
    const ClusterKey key = ClusterKey::from_raw(raw);
    if (!key.has(AttrDim::kAsn)) continue;
    std::printf("  %s\n", coarse_schema.describe(key).c_str());
  }
  std::printf("\nreading: geographic attribution growing vs per-ASN means "
              "regional footprint/peering problems were being fragmented — "
              "the paper's suggestion to add geography pays off.\n");
  return 0;
}
