// Standalone lattice-expansion benchmark: times pass 2 (expand_fold) under
// the retained hashed engine against the mask-major hash-free engine
// (scalar fallback, the widest SIMD path the build supports, and the
// head-sharded parallel variant) on one realistic epoch fold and writes the
// numbers to BENCH_expand.json.
//
// Like perf_fold, this is a plain main() so CI can run it in smoke mode
// (the bench-smoke gate diffs it against bench/baselines/expand_smoke.json
// via tools/bench_check) and the JSON can be checked in as the PR's perf
// evidence.
//
//   usage: perf_expand [--smoke] [output.json]
//
//   VIDQUAL_EXPAND_SESSIONS  sessions folded into the epoch (default 400000)
//   VIDQUAL_EXPAND_REPS      timed repetitions per variant   (default 10)
//   VIDQUAL_EXPAND_SHARDS    shards for the sharded variant  (default 4)
//
// Smoke mode shrinks the knobs so the whole binary finishes in seconds; it
// still exercises every variant and the bit-identity check.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "src/core/cluster_engine.h"
#include "src/core/columns.h"
#include "src/gen/tracegen.h"
#include "src/util/thread_pool.h"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

/// Seconds for `reps` runs of `body` (one warmup run first).
template <typename F>
double time_reps(std::size_t reps, F&& body) {
  body();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Exact cell-content equality (root + every cluster cell, both ways).
bool tables_identical(const vq::EpochClusterTable& a,
                      const vq::EpochClusterTable& b) {
  if (!(a.root == b.root) || a.clusters.size() != b.clusters.size()) {
    return false;
  }
  bool same = true;
  a.clusters.for_each([&](std::uint64_t raw, const vq::ClusterStats& stats) {
    const vq::ClusterStats* other = b.clusters.find(raw);
    if (other == nullptr || !(stats == *other)) same = false;
  });
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vq;

  bool smoke = false;
  std::string out_path = "BENCH_expand.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const auto sessions_n = static_cast<std::uint32_t>(
      env_u64("VIDQUAL_EXPAND_SESSIONS", smoke ? 40'000 : 400'000));
  const auto reps = static_cast<std::size_t>(
      env_u64("VIDQUAL_EXPAND_REPS", smoke ? 3 : 10));
  const auto shards =
      static_cast<std::size_t>(env_u64("VIDQUAL_EXPAND_SHARDS", 4));

  // Same default bench world as perf_fold: one epoch over a compact
  // attribute universe, so leaves repeat heavily and the expansion — not
  // the fold — dominates, exactly the regime the mask-major engine targets.
  WorldConfig world_config;
  world_config.num_sites = 20;
  world_config.num_cdns = 3;
  world_config.num_asns = 50;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 1;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch = sessions_n;
  trace_config.diurnal_amplitude = 0.0;
  const SessionTable trace = generate_trace(world, events, trace_config);

  const ProblemThresholds thresholds;
  const LeafFold fold = fold_sessions(trace.epoch(0), thresholds, 0);

  ClusterEngineConfig hashed_config;
  hashed_config.expand = ExpandStrategy::kHashed;
  ClusterEngineConfig scalar_config;
  scalar_config.expand_kernel = BatchKernel::kScalar;
  const ClusterEngineConfig mm_config;  // defaults: mask-major, kAuto

  std::printf("perf_expand: %zu sessions, %zu leaves, %zu reps, kernel %s\n",
              trace.size(), fold.leaves.size(), reps,
              std::string{batch_kernel_name()}.c_str());

  // A "rep" is one full pass-2 expansion of the epoch fold, so reps/sec is
  // directly expand epochs/sec — at ~90% of epoch cost this is the epoch
  // throughput ceiling the pipeline sees.
  const auto check = [&](const EpochClusterTable& table) {
    if (table.root.sessions != trace.size()) std::abort();
  };
  const double hashed_s =
      time_reps(reps, [&] { check(expand_fold(fold, hashed_config)); });
  const double scalar_s =
      time_reps(reps, [&] { check(expand_fold(fold, scalar_config)); });
  const double simd_s =
      time_reps(reps, [&] { check(expand_fold(fold, mm_config)); });
  ThreadPool pool{shards};
  const double sharded_s = time_reps(
      reps, [&] { check(expand_fold(fold, mm_config, &pool, shards)); });

  // Bit-identity before the numbers mean anything (the full differential
  // lives in tests/test_expand_differential.cpp).
  const EpochClusterTable hashed_table = expand_fold(fold, hashed_config);
  if (!tables_identical(hashed_table, expand_fold(fold, scalar_config)) ||
      !tables_identical(hashed_table, expand_fold(fold, mm_config)) ||
      !tables_identical(hashed_table,
                        expand_fold(fold, mm_config, &pool, shards))) {
    std::fprintf(stderr, "FATAL: expansion engines disagree\n");
    return 1;
  }

  const double n = static_cast<double>(reps);
  const double hashed_eps = n / hashed_s;
  const double scalar_eps = n / scalar_s;
  const double simd_eps = n / simd_s;
  const double sharded_eps = n / sharded_s;
  const double leaves_per_sec =
      simd_eps * static_cast<double>(fold.leaves.size());

  std::printf("  hashed            : %8.2f expands/sec\n", hashed_eps);
  std::printf("  mask-major scalar : %8.2f expands/sec  (%.2fx)\n",
              scalar_eps, scalar_eps / hashed_eps);
  std::printf("  mask-major %-6s : %8.2f expands/sec  (%.2fx, %.1fM leaves/s)\n",
              std::string{batch_kernel_name()}.c_str(), simd_eps,
              simd_eps / hashed_eps, leaves_per_sec / 1e6);
  std::printf("  mask-major x%-5zu : %8.2f expands/sec  (%.2fx)\n", shards,
              sharded_eps, sharded_eps / hashed_eps);

  std::ofstream out{out_path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"mask_major_expand\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"kernel\": \"" << batch_kernel_name() << "\",\n"
      << "  \"sessions\": " << trace.size() << ",\n"
      << "  \"leaves\": " << fold.leaves.size() << ",\n"
      << "  \"cells\": " << hashed_table.clusters.size() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"hashed_expands_per_sec\": " << hashed_eps << ",\n"
      << "  \"maskmajor_scalar_expands_per_sec\": " << scalar_eps << ",\n"
      << "  \"maskmajor_expands_per_sec\": " << simd_eps << ",\n"
      << "  \"maskmajor_sharded_expands_per_sec\": " << sharded_eps << ",\n"
      << "  \"maskmajor_leaves_per_sec\": " << leaves_per_sec << ",\n"
      << "  \"speedup_maskmajor_vs_hashed\": " << simd_eps / hashed_eps
      << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
