// Table 4: proactive history-based alleviation — identify the top 1% of
// critical clusters (by coverage) on a training window, "fix" them wherever
// they reappear later; compare against selecting on the future itself.
//
// Paper rows (alleviated fraction, % of the potential):
//              intra-week          inter-week
//   BufRatio    0.35 (71%)          0.19 (61%)
//   Bitrate     0.13 (68%)          0.09 (64%)
//   JoinTime    0.47 (84%)          0.42 (85%)
//   JoinFail    0.68 (85%)          0.54 (86%)
// Shape targets: proactive reaches 60-85% of the potential in both splits;
// join time/failure transfer better than buffering/bitrate.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const WhatIfAnalyzer whatif{exp.result};

  bench::print_header(
      "Table 4: proactive (history-based) alleviation, top 1% by coverage",
      "60-85% of the oracle potential, intra-week and inter-week");

  const std::uint32_t n = exp.result.num_epochs;
  const std::uint32_t week = n / 2;

  struct PaperRow {
    Metric metric;
    double intra_new, intra_potential;
    double inter_new, inter_potential;
  };
  constexpr PaperRow kPaper[] = {
      {Metric::kBufRatio, 0.35, 0.49, 0.19, 0.31},
      {Metric::kBitrate, 0.13, 0.19, 0.09, 0.14},
      {Metric::kJoinTime, 0.47, 0.56, 0.42, 0.49},
      {Metric::kJoinFailure, 0.68, 0.80, 0.54, 0.63},
  };

  std::printf("%-12s | %21s | %21s || %21s | %21s\n", "", "paper intra-week",
              "measured intra-week", "paper inter-week",
              "measured inter-week");
  std::printf("%-12s | %10s %10s | %10s %10s || %10s %10s | %10s %10s\n",
              "metric", "new", "potential", "new", "potential", "new",
              "potential", "new", "potential");

  for (const PaperRow& row : kPaper) {
    // Intra-week: train on the first 4/7 of week one, test on the rest of
    // week one (paper: first 4 days -> last 3 days).
    const std::uint32_t four_days = week * 4 / 7;
    const auto intra =
        whatif.proactive(row.metric, 0.01, 0, four_days, four_days, week);
    // Inter-week: train on week one, test on week two.
    const auto inter = whatif.proactive(row.metric, 0.01, 0, week, week, n);
    std::printf(
        "%-12s | %10.2f %10.2f | %10.2f %10.2f || %10.2f %10.2f | %10.2f "
        "%10.2f\n",
        std::string(metric_name(row.metric)).c_str(), row.intra_new,
        row.intra_potential, intra.alleviated_fraction,
        intra.potential_fraction, row.inter_new, row.inter_potential,
        inter.alleviated_fraction, inter.potential_fraction);
  }

  std::printf("\nshape checks (fraction of potential captured by history):\n");
  // The paper's "top 1%" selects dozens of clusters from thousands; our
  // synthetic pool holds a few hundred, so 1% is a brittle handful of keys.
  // Report the paper-literal 1% and a scale-adjusted 5% side by side.
  for (const double top_frac : {0.01, 0.05}) {
    std::printf("(selecting the top %.0f%% of the training window's "
                "critical clusters%s)\n",
                100 * top_frac,
                top_frac > 0.011 ? ", scale-adjusted" : ", paper-literal");
    for (const PaperRow& row : kPaper) {
      const std::uint32_t four_days = week * 4 / 7;
      const auto intra = whatif.proactive(row.metric, top_frac, 0, four_days,
                                          four_days, week);
      const auto inter =
          whatif.proactive(row.metric, top_frac, 0, week, week, n);
      std::printf("  %-12s intra %5.1f%% (paper %2.0f%%), inter %5.1f%% "
                  "(paper %2.0f%%)\n",
                  std::string(metric_name(row.metric)).c_str(),
                  intra.potential_fraction > 0
                      ? 100.0 * intra.alleviated_fraction /
                            intra.potential_fraction
                      : 0.0,
                  100.0 * row.intra_new / row.intra_potential,
                  inter.potential_fraction > 0
                      ? 100.0 * inter.alleviated_fraction /
                            inter.potential_fraction
                      : 0.0,
                  100.0 * row.inter_new / row.inter_potential);
    }
  }
  return 0;
}
