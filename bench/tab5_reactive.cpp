// Table 5: reactive alleviation — detect each critical cluster after one
// hour of activity and fix it for the rest of its streak.
//
// Paper rows (alleviated fraction, % of potential):
//   BufRatio    0.43 (95%) of 0.45
//   Bitrate     0.12 (70%) of 0.17
//   JoinTime    0.48 (78%) of 0.61
//   JoinFail    0.51 (81%) of 0.63
// Shape target: a 1-hour detection delay still captures 70-95% of the
// oracle, because most attributed problem mass sits in multi-hour streaks.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const WhatIfAnalyzer whatif{exp.result};

  bench::print_header(
      "Table 5: reactive alleviation with a 1-hour detection delay",
      "captures 70-95% of the oracle potential");

  struct PaperRow {
    Metric metric;
    double paper_new, paper_potential;
  };
  constexpr PaperRow kPaper[] = {
      {Metric::kBufRatio, 0.43, 0.45},
      {Metric::kBitrate, 0.12, 0.17},
      {Metric::kJoinTime, 0.48, 0.61},
      {Metric::kJoinFailure, 0.51, 0.63},
  };

  std::printf("%-12s | %10s %10s | %10s %10s | %16s\n", "metric",
              "paper new", "paper pot", "meas new", "meas pot",
              "captured (paper)");
  for (const PaperRow& row : kPaper) {
    const auto outcome = whatif.reactive(row.metric, 1);
    std::printf("%-12s | %10.2f %10.2f | %10.2f %10.2f | %7.0f%% (%3.0f%%)\n",
                std::string(metric_name(row.metric)).c_str(), row.paper_new,
                row.paper_potential, outcome.alleviated_fraction,
                outcome.potential_fraction,
                outcome.potential_fraction > 0
                    ? 100.0 * outcome.alleviated_fraction /
                          outcome.potential_fraction
                    : 0.0,
                100.0 * row.paper_new / row.paper_potential);
  }
  return 0;
}
