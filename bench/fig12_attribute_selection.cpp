// Figure 12: fixing the top-k critical clusters restricted to one attribute
// type (Site / ASN / CDN / ConnType), their union, or any attribute
// combination — join failure metric, coverage ranking.
//
// Paper shape targets: no single attribute matches the "any" curve; the
// union of the four single-attribute types comes close to "any".

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/whatif.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const WhatIfAnalyzer whatif{exp.result};

  bench::print_header(
      "Figure 12: attribute-restricted cluster selection (JoinFailure)",
      "no single attribute suffices; the Site+CDN+ASN+ConnType union "
      "approaches the unrestricted curve");

  const double fractions[] = {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
  const Metric metric = Metric::kJoinFailure;

  struct Selection {
    const char* label;
    std::vector<std::uint8_t> masks;
  };
  const Selection selections[] = {
      {"Any", {}},
      {"{Site,CDN,ASN,ConnType}",
       {dim_bit(AttrDim::kSite), dim_bit(AttrDim::kCdn),
        dim_bit(AttrDim::kAsn), dim_bit(AttrDim::kConnType)}},
      {"Site", {dim_bit(AttrDim::kSite)}},
      {"ASN", {dim_bit(AttrDim::kAsn)}},
      {"ConnType", {dim_bit(AttrDim::kConnType)}},
      {"CDN", {dim_bit(AttrDim::kCdn)}},
  };

  std::printf("%12s", "top_frac");
  for (const auto& s : selections) std::printf(" %24s", s.label);
  std::printf("\n");

  std::vector<std::vector<WhatIfAnalyzer::SweepPoint>> sweeps;
  for (const auto& s : selections) {
    sweeps.push_back(whatif.topk_sweep_masks(metric, RankBy::kCoverage,
                                             fractions, s.masks));
  }
  for (std::size_t i = 0; i < std::size(fractions); ++i) {
    std::printf("%12.4f", fractions[i]);
    for (const auto& sweep : sweeps) {
      std::printf(" %24.4f", sweep[i].alleviated_fraction);
    }
    std::printf("\n");
  }

  const double any_full = sweeps[0].back().alleviated_fraction;
  const double union_full = sweeps[1].back().alleviated_fraction;
  double best_single = 0.0;
  for (std::size_t s = 2; s < std::size(selections); ++s) {
    best_single =
        std::max(best_single, sweeps[s].back().alleviated_fraction);
  }
  std::printf("\nshape checks:\n");
  std::printf("  best single attribute reaches %.1f%% of 'any' (paper: "
              "clearly below)\n",
              any_full > 0 ? 100.0 * best_single / any_full : 0.0);
  std::printf("  union of top-4 attributes reaches %.1f%% of 'any' (paper: "
              "comparable)\n",
              any_full > 0 ? 100.0 * union_full / any_full : 0.0);
  return 0;
}
