// Figure 9: per-epoch counts of problem clusters vs critical clusters for
// the join time metric.
//
// Paper shape target: critical clusters are a large constant factor (~50x
// at 300M-session scale) fewer than problem clusters, consistently over
// time.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Figure 9: problem vs critical cluster counts over time (JoinTime)",
      "critical clusters consistently ~50x fewer than problem clusters "
      "(factor shrinks with dataset scale; see EXPERIMENTS.md)");

  std::printf("%6s %16s %16s %8s\n", "epoch", "problem_clusters",
              "critical_clusters", "ratio");
  double sum_ratio = 0.0;
  std::uint32_t counted = 0;
  for (std::uint32_t e = 0; e < exp.result.num_epochs; ++e) {
    const auto& summary = exp.result.at(Metric::kJoinTime, e);
    const auto problems = summary.analysis.num_problem_clusters;
    const auto criticals = summary.analysis.criticals.size();
    const double ratio =
        criticals == 0 ? 0.0
                       : static_cast<double>(problems) /
                             static_cast<double>(criticals);
    if (criticals > 0) {
      sum_ratio += ratio;
      ++counted;
    }
    std::printf("%6u %16u %16zu %8.1f\n", e, problems, criticals, ratio);
  }
  std::printf("\nmean problem:critical ratio = %.1f : 1 (paper ~50:1 at "
              "300M sessions)\n",
              counted == 0 ? 0.0 : sum_ratio / counted);
  return 0;
}
