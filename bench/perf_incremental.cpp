// Incremental epoch-update benchmark: the per-epoch cost of
// IncrementalLattice::advance against the from-scratch rebuild
// (expand_fold + four find_critical_clusters passes) on a low-churn
// streaming workload — the regime the delta engine targets (DESIGN.md
// §4.13): a stable leaf population where only a few percent of leaves
// change per epoch and the global problem ratios hold steady, so the
// touched-cell set and the candidate caches do the work.
//
// Like perf_fold, a plain main() so CI can run it in smoke mode (gated
// against bench/baselines/incremental_smoke.json via tools/bench_check)
// and the full run's JSON is checked in as BENCH_incremental.json.
//
//   usage: perf_incremental [--smoke] [output.json]
//
//   VIDQUAL_INC_LEAVES   active leaves per epoch        (default 4000)
//   VIDQUAL_INC_CHURN    per-epoch churned leaves       (default 200 = 5%)
//   VIDQUAL_INC_EPOCHS   timed epochs per rep           (default 48)
//   VIDQUAL_INC_REPS     timed repetitions              (default 5)
//
// The workload models migration churn, the monitoring steady state the
// delta engine targets: the client population mix is stable — every epoch
// carries the same leaves with the same per-leaf loads — but each epoch one
// cohort of VIDQUAL_INC_CHURN clients reappears under fresh ASNs (ISP
// re-routing, DHCP pool rotation, CDN client reassignment).  So per epoch,
// `churn` leaf keys retire and `churn` appear, while every projection that
// does not pin the ASN receives a net-zero delta: global totals, site/CDN
// aggregates, and their flags are bit-for-bit constant, and value-based
// invalidation keeps the candidate caches of the ~(active - churn)
// untouched leaves valid.  Adversarial churn that reshuffles broad
// aggregates every epoch degrades the advantage toward the
// expansion-only savings (~1.5x); this harness measures the design point.

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/critical_cluster.h"
#include "src/core/incremental.h"
#include "src/core/problem_cluster.h"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

template <typename F>
double time_reps(std::size_t reps, F&& body) {
  body();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// ASN values live in a prime modulus so the two generations of a cohort
/// (and distinct cohorts within one epoch) never collide.
constexpr std::uint32_t kAsnMod = 65'521;

/// Client cohort i in ASN generation `gen` (0 or 1 — a cohort alternates
/// between two ASNs, the finite-pool steady state of a long-lived
/// monitor).  All non-ASN attributes are a pure function of i, so a
/// migration changes only the 64 ASN-pinning projections of the leaf.
vq::ClusterKey leaf_key(std::uint32_t i, std::uint32_t gen,
                        std::uint32_t active) {
  vq::AttrVec attrs;
  attrs[vq::AttrDim::kSite] = static_cast<std::uint16_t>(i % 331);
  attrs[vq::AttrDim::kCdn] = static_cast<std::uint16_t>(i % 17);
  attrs[vq::AttrDim::kAsn] =
      static_cast<std::uint16_t>((i + gen * active) % kAsnMod);
  attrs[vq::AttrDim::kConnType] = static_cast<std::uint16_t>(i % 5);
  attrs[vq::AttrDim::kPlayer] = static_cast<std::uint16_t>((i / 7) % 4);
  attrs[vq::AttrDim::kBrowser] = static_cast<std::uint16_t>((i / 3) % 6);
  attrs[vq::AttrDim::kVodLive] = static_cast<std::uint16_t>(i % 2);
  return vq::ClusterKey::pack(vq::kFullMask, attrs);
}

/// Per-cohort load, constant across generations (the sessions migrate, the
/// mix does not).  A minority of "hot" cohorts carry problem mass so the
/// analyses have real problem and critical clusters to extract.
vq::ClusterStats leaf_stats(std::uint32_t i) {
  vq::ClusterStats s;
  s.sessions = 40 + i % 21;
  const bool hot = i % 8 == 0;
  for (int m = 0; m < vq::kNumMetrics; ++m) {
    s.problems[m] = hot ? s.sessions / 2 : i % 3;
  }
  return s;
}

/// Epoch e's fold: all `active` cohorts, with cohort group g = i / churn
/// flipping its ASN generation at epochs g+1, g+1+G, g+1+2G, ... (G =
/// number of groups) — exactly `churn` leaf keys retired and `churn` added
/// per epoch after the first, identical totals throughout, periodic with
/// period 2G (each group returns to its original ASN after two flips).
vq::LeafFold make_fold(std::uint32_t epoch, std::uint32_t active,
                       std::uint32_t churn) {
  const std::uint32_t groups = churn == 0 ? 1 : active / churn;
  vq::LeafFold fold;
  fold.epoch = epoch;
  fold.leaves.reserve(static_cast<std::size_t>(active) * 2);
  for (std::uint32_t i = 0; i < active; ++i) {
    const std::uint32_t g = churn == 0 ? 0 : i / churn;
    const std::uint32_t flips =
        churn != 0 && epoch > g ? (epoch - g - 1) / groups + 1 : 0;
    const vq::ClusterStats s = leaf_stats(i);
    fold.leaves[leaf_key(i, flips % 2, active).raw()] += s;
    fold.root += s;
  }
  return fold;
}

bool analyses_identical(const vq::CriticalAnalysis& a,
                        const vq::CriticalAnalysis& b) {
  if (a.problem_cluster_keys != b.problem_cluster_keys) return false;
  if (a.attributed_mass != b.attributed_mass) return false;
  if (a.criticals.size() != b.criticals.size()) return false;
  for (std::size_t i = 0; i < a.criticals.size(); ++i) {
    if (a.criticals[i].key.raw() != b.criticals[i].key.raw()) return false;
    if (a.criticals[i].attributed != b.criticals[i].attributed) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vq;

  bool smoke = false;
  std::string out_path = "BENCH_incremental.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const auto active = static_cast<std::uint32_t>(
      env_u64("VIDQUAL_INC_LEAVES", smoke ? 1'000 : 4'000));
  const auto churn = static_cast<std::uint32_t>(
      env_u64("VIDQUAL_INC_CHURN", smoke ? 50 : 200));
  const auto num_epochs = static_cast<std::uint32_t>(
      env_u64("VIDQUAL_INC_EPOCHS", smoke ? 12 : 48));
  const auto reps =
      static_cast<std::size_t>(env_u64("VIDQUAL_INC_REPS", smoke ? 2 : 5));

  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 60};
  const ClusterEngineConfig engine;

  // One full migration period of folds; the epoch stream replays it
  // cyclically (the wrap transition churns exactly `churn` keys like every
  // other transition, so the stream is an endless steady state).
  const std::uint32_t groups = churn == 0 ? 1 : active / churn;
  const std::uint32_t period = churn == 0 ? 1 : 2 * groups;
  std::vector<LeafFold> folds;
  folds.reserve(period);
  for (std::uint32_t e = 0; e < period; ++e) {
    folds.push_back(make_fold(e, active, churn));
  }
  std::printf("perf_incremental: %u leaves, %u churn/epoch (%.1f%%), "
              "period %u, %u epochs/rep, %zu reps\n",
              active, churn, 100.0 * churn / active, period, num_epochs,
              reps);

  // Bit-identity gate over two periods — cold build plus a full cycle of
  // slot/cell reuse — before the numbers mean anything (the exhaustive
  // differential lives in tests/test_incremental.cpp).
  {
    IncrementalLattice lattice{params, engine.max_arity};
    for (std::uint32_t e = 0; e < 2 * period; ++e) {
      const LeafFold& fold = folds[e % period];
      const auto analyses = lattice.advance(fold);
      const EpochClusterTable table = expand_fold(fold, engine);
      for (const Metric m : kAllMetrics) {
        const CriticalAnalysis expected =
            find_critical_clusters(fold, table, params, m);
        if (!analyses_identical(expected,
                                analyses[static_cast<std::uint8_t>(m)])) {
          std::fprintf(stderr,
                       "FATAL: incremental diverged from rebuild at epoch "
                       "%u metric %d\n",
                       e, static_cast<int>(m));
          return 1;
        }
      }
    }
  }

  // A "rep" is `num_epochs` advances of the stream; per-epoch rates divide
  // by that.  The rebuild side re-expands and re-extracts from scratch,
  // which is exactly what run_pipeline_streaming does without
  // --incremental.
  std::uint32_t rebuild_pos = 0;
  const double rebuild_s = time_reps(reps, [&] {
    for (std::uint32_t e = 0; e < num_epochs; ++e) {
      const LeafFold& fold = folds[rebuild_pos++ % period];
      const EpochClusterTable table = expand_fold(fold, engine);
      for (const Metric m : kAllMetrics) {
        const CriticalAnalysis analysis =
            find_critical_clusters(fold, table, params, m);
        if (analysis.sessions == 0) std::abort();
      }
    }
  });

  // The incremental side measures the long-lived monitor: one lattice,
  // warmed through a full period (all slots and cells materialised), then
  // timed in its reuse steady state.
  IncrementalLattice lattice{params, engine.max_arity};
  std::uint32_t stream_pos = 0;
  for (std::uint32_t e = 0; e < period; ++e) {
    lattice.advance(folds[stream_pos++ % period]);
  }
  const double incremental_s = time_reps(reps, [&] {
    for (std::uint32_t e = 0; e < num_epochs; ++e) {
      const auto analyses = lattice.advance(folds[stream_pos++ % period]);
      if (analyses[0].sessions == 0) std::abort();
    }
  });
  const double steady_cells_touched =
      static_cast<double>(lattice.last_delta().cells_touched);

  const double n = static_cast<double>(reps) * num_epochs;
  const double rebuild_eps = n / rebuild_s;
  const double incremental_eps = n / incremental_s;
  const double speedup = incremental_eps / rebuild_eps;
  std::printf("  rebuild     : %8.2f epochs/sec\n", rebuild_eps);
  std::printf("  incremental : %8.2f epochs/sec  (%.2fx, %.0f cells "
              "touched/epoch at steady state)\n",
              incremental_eps, speedup, steady_cells_touched);

  std::ofstream out{out_path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"incremental_epoch_update\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"active_leaves\": " << active << ",\n"
      << "  \"churned_leaves_per_epoch\": " << churn << ",\n"
      << "  \"epochs\": " << num_epochs << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"steady_cells_touched_per_epoch\": " << steady_cells_touched
      << ",\n"
      << "  \"rebuild_epochs_per_sec\": " << rebuild_eps << ",\n"
      << "  \"incremental_epochs_per_sec\": " << incremental_eps << ",\n"
      << "  \"speedup_incremental_vs_rebuild\": " << speedup << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
