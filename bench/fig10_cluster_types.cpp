// Figure 10: breakdown of the problem sessions attributed to each type of
// critical cluster (attribute combination), per metric.
//
// Paper shape targets: Site is the dominant single-attribute type for every
// metric; CDN, ASN and ConnectionType are the other prominent types; most
// unaccounted-for sessions fall outside any problem cluster rather than
// being unattributed.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/overlap.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Figure 10: types of critical clusters",
      "Site dominates; CDN/ASN/ConnType prominent; unaccounted sessions are "
      "mostly outside any problem cluster");

  for (const Metric m : kAllMetrics) {
    const TypeBreakdown breakdown = critical_type_breakdown(exp.result, m);
    std::printf("(%s)\n", std::string(metric_name(m)).c_str());
    std::vector<std::pair<std::uint8_t, double>> rows(
        breakdown.by_mask.begin(), breakdown.by_mask.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    double shown = 0.0;
    std::size_t printed = 0;
    for (const auto& [mask, fraction] : rows) {
      if (printed < 8) {
        std::printf("  %-36s %6.2f%%\n", mask_label(mask).c_str(),
                    100.0 * fraction);
        shown += fraction;
        ++printed;
      }
    }
    double other = 0.0;
    for (std::size_t i = printed; i < rows.size(); ++i) {
      other += rows[i].second;
    }
    std::printf("  %-36s %6.2f%%\n", "other combinations", 100.0 * other);
    std::printf("  %-36s %6.2f%%\n", "not attributed to critical cluster",
                100.0 * breakdown.not_attributed);
    std::printf("  %-36s %6.2f%%\n\n", "not in any problem cluster",
                100.0 * breakdown.not_in_any_cluster);
  }

  std::printf("shape checks:\n");
  for (const Metric m : kAllMetrics) {
    const TypeBreakdown breakdown = critical_type_breakdown(exp.result, m);
    const auto share = [&](AttrDim d) {
      const auto it = breakdown.by_mask.find(dim_bit(d));
      return it == breakdown.by_mask.end() ? 0.0 : it->second;
    };
    const double site = share(AttrDim::kSite);
    const double cdn = share(AttrDim::kCdn);
    const double asn = share(AttrDim::kAsn);
    const double conn = share(AttrDim::kConnType);
    std::printf("  %-12s Site %5.1f%%  Cdn %5.1f%%  Asn %5.1f%%  Conn "
                "%5.1f%%  | server+client single-attr total %5.1f%%\n",
                std::string(metric_name(m)).c_str(), 100 * site, 100 * cdn,
                100 * asn, 100 * conn, 100 * (site + cdn + asn + conn));
  }
  std::printf("(paper: these four types cover the majority of attributed "
              "sessions; e.g. ~60%% of join failures trace to Site/CDN/ASN)\n");
  return 0;
}
