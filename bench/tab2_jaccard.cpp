// Table 2: Jaccard similarity between the top-100 critical clusters of each
// metric pair.
//
// Paper row: BufRatio/Bitrate 0.07, BufRatio/JoinTime 0.23,
// BufRatio/JoinFailure 0.13, Bitrate/JoinTime 0.08,
// Bitrate/JoinFailure 0.01, JoinTime/JoinFailure 0.09.
// Shape target: all pairs weakly overlapping (max ~0.23) — the same
// attribute TYPES matter everywhere but the specific Sites/CDNs/ASNs differ
// per metric.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/overlap.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Table 2: cross-metric overlap of top-100 critical clusters",
      "weak overlap everywhere; best pair ~0.23, worst ~0.01");

  constexpr double kPaper[kNumMetrics][kNumMetrics] = {
      // BufRatio Bitrate JoinTime JoinFailure
      {1.00, 0.07, 0.23, 0.13},
      {0.07, 1.00, 0.08, 0.01},
      {0.23, 0.08, 1.00, 0.09},
      {0.13, 0.01, 0.09, 1.00},
  };

  // Paper-literal top-100 plus a scale-adjusted variant: the paper draws
  // 100 from thousands of distinct critical clusters, our synthetic trace
  // only has a few hundred — top-10% keeps the selection pressure
  // comparable.
  std::size_t min_distinct = SIZE_MAX;
  for (const Metric m : kAllMetrics) {
    min_distinct = std::min(
        min_distinct, top_critical_keys(exp.result, m, SIZE_MAX).size());
  }
  const std::size_t adjusted_k =
      std::max<std::size_t>(10, min_distinct / 10);

  const auto matrix100 = critical_overlap_matrix(exp.result, 100);
  const auto matrix10pct = critical_overlap_matrix(exp.result, adjusted_k);

  std::printf("%-26s %8s %8s %12s\n", "metric pair", "paper", "top-100",
              ("top-" + std::to_string(adjusted_k)).c_str());
  double max_measured = 0.0;
  for (int a = 0; a < kNumMetrics; ++a) {
    for (int b = a + 1; b < kNumMetrics; ++b) {
      char pair[32];
      std::snprintf(pair, sizeof pair, "%s/%s",
                    std::string(metric_name(static_cast<Metric>(a))).c_str(),
                    std::string(metric_name(static_cast<Metric>(b))).c_str());
      std::printf("%-26s %8.2f %8.2f %12.2f\n", pair, kPaper[a][b],
                  matrix100[a][b], matrix10pct[a][b]);
      max_measured = std::max(max_measured, matrix10pct[a][b]);
    }
  }
  std::printf("\nshape check: every pair weakly overlapping "
              "(scale-adjusted max %.2f; paper max 0.23)\n",
              max_measured);
  return 0;
}
