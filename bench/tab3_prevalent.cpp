// Table 3: characteristics of the most prevalent critical clusters, by
// metric and attribute category — the paper's qualitative anecdotes, here
// validated against the planted world's ground truth.
//
// Paper shape targets per cell:
//   BufRatio:  Asian ISPs | in-house single-bitrate CDNs | single-bitrate
//              sites | mobile wireless connections
//   JoinTime:  ISPs loading remote player modules | in-house CDNs of UGC
//              providers | high-bitrate sites
//   JoinFail:  same ASNs as buffering | one shared global CDN
//   Bitrate:   wireless providers | UGC sites

#include <cstdio>
#include <unordered_map>

#include "bench/bench_common.h"
#include "src/core/prevalence.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();
  const World& world = exp.world;

  bench::print_header(
      "Table 3: most prevalent critical clusters, annotated with ground "
      "truth",
      "prevalent clusters concentrate on under-provisioned ISPs, in-house "
      "CDNs, single-bitrate sites, and mobile wireless");

  const double kPrevalenceBar = 0.25;  // paper used 0.6 at 336-epoch scale

  for (const Metric m : kAllMetrics) {
    std::printf("(%s) critical clusters with prevalence > %.0f%%:\n",
                std::string(metric_name(m)).c_str(), 100 * kPrevalenceBar);
    const auto report = build_prevalence(
        critical_cluster_keys(exp.result, m), exp.result.num_epochs);

    std::size_t shown = 0;
    std::size_t truth_hits = 0;
    for (const auto& t : report.timelines) {
      if (t.prevalence <= kPrevalenceBar) continue;
      if (t.key.arity() != 1) continue;  // paper's table: single-attr cells
      std::string annotation = "(no known chronic cause)";
      bool hit = false;
      if (t.key.has(AttrDim::kCdn)) {
        const CdnModel& cdn = world.cdns()[t.key.value(AttrDim::kCdn)];
        if (cdn.in_house) {
          annotation = "in-house CDN, base fail " +
                       std::to_string(cdn.base_fail_prob);
          hit = true;
        }
      } else if (t.key.has(AttrDim::kSite)) {
        const SiteModel& site = world.sites()[t.key.value(AttrDim::kSite)];
        if (site.single_bitrate) {
          annotation = "single-bitrate site (ladder " +
                       std::to_string(
                           static_cast<int>(site.abr.ladder_kbps[0])) +
                       " kbps)";
          hit = true;
        } else if (site.remote_module_region >= 0) {
          annotation = "loads player modules remotely for " +
                       std::string(region_name(static_cast<Region>(
                           site.remote_module_region))) +
                       " clients";
          hit = true;
        }
      } else if (t.key.has(AttrDim::kAsn)) {
        const AsnModel& asn = world.asns()[t.key.value(AttrDim::kAsn)];
        annotation = std::string(region_name(asn.region)) + " ISP, quality " +
                     std::to_string(asn.quality) +
                     (asn.wireless_provider ? ", wireless carrier" : "");
        hit = asn.quality < 0.8 || asn.wireless_provider ||
              asn.region != Region::kUS;
      } else if (t.key.has(AttrDim::kConnType)) {
        const auto conn = t.key.value(AttrDim::kConnType);
        annotation = std::string(kConnTypeNames[conn]);
        hit = conn == kConnMobileWireless || conn >= 5;
      }
      if (shown < 10) {
        std::printf("  %-32s prev %4.0f%%  med %3uh  max %3uh  %s\n",
                    world.schema().describe(t.key).c_str(),
                    100 * t.prevalence, t.median_persistence,
                    t.max_persistence, annotation.c_str());
      }
      ++shown;
      if (hit) ++truth_hits;
    }
    if (shown == 0) {
      std::printf("  (none above the prevalence bar)\n");
    } else {
      std::printf("  -> %zu prevalent single-attribute criticals, %zu "
                  "(%.0f%%) match a planted chronic cause\n",
                  shown, truth_hits,
                  100.0 * static_cast<double>(truth_hits) /
                      static_cast<double>(shown));
    }
    std::printf("\n");
  }
  return 0;
}
