// Figure 7: distribution (inverse CDF) of problem-cluster prevalence per
// quality metric.
//
// Paper shape targets: a skewed distribution; ~10% of problem clusters have
// prevalence > 8% across all metrics, 8-12% appear more than 10% of the
// time.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/prevalence.h"

int main() {
  using namespace vq;
  const auto& exp = bench::default_experiment();

  bench::print_header(
      "Figure 7: prevalence of problem clusters",
      "skewed: ~10% of problem clusters recur in >8% of epochs; >20% recur "
      "in >2.5% of epochs");

  std::printf("fraction of problem clusters with prevalence >= p\n");
  std::printf("%10s", "p");
  for (const Metric m : kAllMetrics) {
    std::printf(" %12s", std::string(metric_name(m)).c_str());
  }
  std::printf("\n");

  std::array<PrevalenceReport, kNumMetrics> reports;
  for (const Metric m : kAllMetrics) {
    const auto keys = problem_cluster_keys(exp.result, m);
    reports[static_cast<int>(m)] =
        build_prevalence(keys, exp.result.num_epochs);
  }

  for (const double p : {0.003, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64,
                         1.0}) {
    std::printf("%10.3f", p);
    for (const Metric m : kAllMetrics) {
      const auto& report = reports[static_cast<int>(m)];
      std::size_t above = 0;
      for (const auto& t : report.timelines) {
        if (t.prevalence >= p) ++above;
      }
      std::printf(" %12.4f",
                  report.timelines.empty()
                      ? 0.0
                      : static_cast<double>(above) /
                            static_cast<double>(report.timelines.size()));
    }
    std::printf("\n");
  }

  std::printf("\nshape checks (paper -> measured):\n");
  for (const Metric m : kAllMetrics) {
    const auto& report = reports[static_cast<int>(m)];
    std::size_t above8 = 0;
    for (const auto& t : report.timelines) {
      if (t.prevalence > 0.08) ++above8;
    }
    std::printf("  %-12s fraction of problem clusters with prevalence > 8%%: "
                "~10%% -> %5.1f%%  (%zu clusters total)\n",
                std::string(metric_name(m)).c_str(),
                report.timelines.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(above8) /
                          static_cast<double>(report.timelines.size()),
                report.timelines.size());
  }
  return 0;
}
