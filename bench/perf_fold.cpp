// Standalone leaf-fold benchmark: times the row-wise fold_sessions hot
// loop against the column-batch kernels (scalar fallback and the widest
// SIMD path the build supports) on one realistic epoch and writes the
// numbers to BENCH_fold.json.
//
// Like perf_critical, this is a plain main() so CI can run it in smoke
// mode (the bench-smoke gate diffs it against bench/baselines/
// fold_smoke.json via tools/bench_check) and the JSON can be checked in as
// the PR's perf evidence.
//
//   usage: perf_fold [--smoke] [output.json]
//
//   VIDQUAL_FOLD_SESSIONS  sessions in the benchmarked epoch (default 400000)
//   VIDQUAL_FOLD_REPS      timed repetitions per variant     (default 20)
//
// Smoke mode shrinks both knobs so the whole binary finishes in seconds;
// it still exercises every variant and the bit-identity check.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "src/core/cluster_engine.h"
#include "src/core/columns.h"
#include "src/gen/tracegen.h"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

/// Seconds for `reps` runs of `body` (one warmup run first).
template <typename F>
double time_reps(std::size_t reps, F&& body) {
  body();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Exact equality of two leaf folds (root + every leaf cell).
bool folds_identical(const vq::LeafFold& a, const vq::LeafFold& b) {
  if (!(a.root == b.root) || a.leaves.size() != b.leaves.size()) return false;
  bool same = true;
  a.leaves.for_each([&](std::uint64_t raw, const vq::ClusterStats& stats) {
    const vq::ClusterStats* other = b.leaves.find(raw);
    if (other == nullptr || !(stats == *other)) same = false;
  });
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vq;

  bool smoke = false;
  std::string out_path = "BENCH_fold.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const auto sessions_n = static_cast<std::uint32_t>(
      env_u64("VIDQUAL_FOLD_SESSIONS", smoke ? 40'000 : 400'000));
  const auto reps =
      static_cast<std::size_t>(env_u64("VIDQUAL_FOLD_REPS", smoke ? 3 : 20));

  // One epoch over a compact attribute universe: leaves repeat heavily, the
  // regime the fold compresses and the columnar format targets.
  WorldConfig world_config;
  world_config.num_sites = 20;
  world_config.num_cdns = 3;
  world_config.num_asns = 50;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 1;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch = sessions_n;
  trace_config.diurnal_amplitude = 0.0;
  const SessionTable trace = generate_trace(world, events, trace_config);

  const ProblemThresholds thresholds;
  const SessionColumns columns =
      SessionColumns::from_sessions(trace.epoch(0), 0);

  std::printf("perf_fold: %zu sessions, %zu reps, kernel %s\n", trace.size(),
              reps, std::string{batch_kernel_name()}.c_str());

  // A "rep" is one full pass-1 fold of the epoch, so reps/sec is directly
  // fold epochs/sec — the unit the streaming pipeline consumes.
  const double row_s = time_reps(reps, [&] {
    const LeafFold fold = fold_sessions(trace.epoch(0), thresholds, 0);
    if (fold.root.sessions != trace.size()) std::abort();
  });
  const double scalar_s = time_reps(reps, [&] {
    const LeafFold fold =
        fold_sessions_columns(columns, thresholds, 0, BatchKernel::kScalar);
    if (fold.root.sessions != trace.size()) std::abort();
  });
  const double simd_s = time_reps(reps, [&] {
    const LeafFold fold =
        fold_sessions_columns(columns, thresholds, 0, BatchKernel::kAuto);
    if (fold.root.sessions != trace.size()) std::abort();
  });

  // Bit-identity before the numbers mean anything (the full differential
  // lives in tests/test_columns_fold.cpp).
  const LeafFold row_fold = fold_sessions(trace.epoch(0), thresholds, 0);
  const LeafFold scalar_fold =
      fold_sessions_columns(columns, thresholds, 0, BatchKernel::kScalar);
  const LeafFold simd_fold =
      fold_sessions_columns(columns, thresholds, 0, BatchKernel::kAuto);
  if (!folds_identical(row_fold, scalar_fold) ||
      !folds_identical(row_fold, simd_fold)) {
    std::fprintf(stderr, "FATAL: fold variants disagree\n");
    return 1;
  }

  const double n = static_cast<double>(reps);
  const double row_eps = n / row_s;
  const double scalar_eps = n / scalar_s;
  const double simd_eps = n / simd_s;
  const double sessions_per_sec =
      simd_eps * static_cast<double>(trace.size());

  std::printf("  row-wise        : %8.2f folds/sec\n", row_eps);
  std::printf("  columnar scalar : %8.2f folds/sec  (%.2fx)\n", scalar_eps,
              scalar_eps / row_eps);
  std::printf("  columnar %-6s : %8.2f folds/sec  (%.2fx, %.1fM sess/s)\n",
              std::string{batch_kernel_name()}.c_str(), simd_eps,
              simd_eps / row_eps, sessions_per_sec / 1e6);

  std::ofstream out{out_path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"columnar_fold\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"kernel\": \"" << batch_kernel_name() << "\",\n"
      << "  \"sessions\": " << trace.size() << ",\n"
      << "  \"distinct_leaves\": " << row_fold.leaves.size() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"row_folds_per_sec\": " << row_eps << ",\n"
      << "  \"columnar_scalar_folds_per_sec\": " << scalar_eps << ",\n"
      << "  \"columnar_folds_per_sec\": " << simd_eps << ",\n"
      << "  \"columnar_sessions_per_sec\": " << sessions_per_sec << ",\n"
      << "  \"speedup_columnar_vs_row\": " << simd_eps / row_eps << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
