// Analysing external measurements: the CSV entry point.
//
// Real deployments don't have a simulator — they have logs. This example
// shows the full path for user-supplied data: write a trace to CSV (here we
// synthesise one first so the example is self-contained), read it back with
// schema inference, and run the analysis on the loaded table.
//
// Usage:
//   ./build/examples/analyze_csv            # self-contained demo
//   ./build/examples/analyze_csv mydata.csv # analyse your own trace
//
// CSV format (header required):
//   epoch,site,cdn,asn,conn_type,player,browser,vod_live,
//   buffering_ratio,bitrate_kbps,join_time_ms,join_failed

#include <cstdio>
#include <filesystem>

#include "src/core/whatif.h"
#include "src/core/overlap.h"
#include "src/gen/trace_io.h"
#include "src/gen/tracegen.h"

int main(int argc, char** argv) {
  using namespace vq;

  std::filesystem::path path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Self-contained mode: synthesise 24 h of data and write it out.
    path = std::filesystem::temp_directory_path() / "vidqual_demo.csv";
    WorldConfig world_config;
    world_config.num_sites = 100;
    world_config.num_cdns = 10;
    world_config.num_asns = 400;
    const World world = World::build(world_config);
    EventScheduleConfig event_config;
    event_config.num_epochs = 24;
    const EventSchedule events = EventSchedule::generate(world, event_config);
    TraceConfig trace_config;
    trace_config.num_epochs = 24;
    trace_config.sessions_per_epoch = 2500;
    const SessionTable trace = generate_trace(world, events, trace_config);
    write_trace_csv(path, trace, world.schema());
    std::printf("wrote demo trace: %s (%zu sessions)\n\n",
                path.string().c_str(), trace.size());
  }

  // ---- the real entry point for external data ------------------------------
  const LoadedTrace loaded = read_trace_csv(path);
  std::printf("loaded %zu sessions over %u epochs; %zu sites, %zu CDNs, "
              "%zu ASNs\n\n",
              loaded.table.size(), loaded.table.num_epochs(),
              loaded.schema.cardinality(AttrDim::kSite),
              loaded.schema.cardinality(AttrDim::kCdn),
              loaded.schema.cardinality(AttrDim::kAsn));

  PipelineConfig config;
  // Scale the significance floor to the data: ~2% of a mean epoch.
  config.cluster_params.min_sessions = std::max<std::uint32_t>(
      30, static_cast<std::uint32_t>(loaded.table.size() /
                                     std::max(1u, loaded.table.num_epochs()) /
                                     50));
  const PipelineResult result = run_pipeline(loaded.table, config);
  const WhatIfAnalyzer whatif{result};

  for (const Metric m : kAllMetrics) {
    const auto agg = result.aggregates(m);
    const double fractions[] = {0.05};
    const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, fractions);
    std::printf("%-12s problem clusters/epoch %6.1f | critical %5.1f | "
                "critical coverage %4.2f | fixing top 5%% alleviates %4.1f%%\n",
                std::string(metric_name(m)).c_str(),
                agg.mean_problem_clusters, agg.mean_critical_clusters,
                agg.mean_critical_coverage,
                100 * sweep[0].alleviated_fraction);
  }

  std::printf("\ntop recurrent offenders (JoinFailure):\n");
  for (const std::uint64_t raw :
       top_critical_keys(result, Metric::kJoinFailure, 5)) {
    std::printf("  %s\n",
                loaded.schema.describe(ClusterKey::from_raw(raw)).c_str());
  }
  return 0;
}
