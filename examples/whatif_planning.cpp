// Improvement planning: given two weeks of measurements, decide where to
// spend remediation effort — which clusters, how many, proactive vs
// reactive — by replaying the paper's §5 what-if machinery.
//
// Build & run: cmake --build build && ./build/examples/whatif_planning

#include <cstdio>

#include "src/core/overlap.h"
#include "src/core/whatif.h"
#include "src/gen/tracegen.h"

int main() {
  using namespace vq;

  WorldConfig world_config;
  world_config.num_asns = 1500;
  const World world = World::build(world_config);

  constexpr std::uint32_t kEpochs = 96;  // four days
  EventScheduleConfig event_config;
  event_config.num_epochs = kEpochs;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = kEpochs;
  trace_config.sessions_per_epoch = 5000;
  const SessionTable trace = generate_trace(world, events, trace_config);

  PipelineConfig config;
  config.cluster_params.min_sessions = 100;
  const PipelineResult result = run_pipeline(trace, config);
  const WhatIfAnalyzer whatif{result};

  // ---- 1. Where is the repair budget best spent? --------------------------
  std::printf("marginal value of fixing the top-k critical clusters "
              "(coverage-ranked), per metric:\n");
  const double fractions[] = {0.01, 0.05, 0.20};
  std::printf("%-12s %10s %10s %10s\n", "metric", "top 1%", "top 5%",
              "top 20%");
  for (const Metric m : kAllMetrics) {
    const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, fractions);
    std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n",
                std::string(metric_name(m)).c_str(),
                100 * sweep[0].alleviated_fraction,
                100 * sweep[1].alleviated_fraction,
                100 * sweep[2].alleviated_fraction);
  }

  // ---- 2. The shortlist: what exactly would we fix? ------------------------
  std::printf("\nremediation shortlist (JoinFailure, top 5 by coverage):\n");
  for (const std::uint64_t raw :
       top_critical_keys(result, Metric::kJoinFailure, 5)) {
    const ClusterKey key = ClusterKey::from_raw(raw);
    std::string hint = "investigate";
    if (key.has(AttrDim::kCdn)) {
      hint = world.cdns()[key.value(AttrDim::kCdn)].in_house
                 ? "contract a commercial CDN / add a second CDN"
                 : "escalate to CDN operator";
    } else if (key.has(AttrDim::kSite)) {
      const SiteModel& site = world.sites()[key.value(AttrDim::kSite)];
      if (site.single_bitrate) hint = "publish a multi-rate ladder";
      if (site.remote_module_region >= 0) hint = "host player modules locally";
    } else if (key.has(AttrDim::kAsn)) {
      hint = "peering/transit review with the ISP";
    }
    std::printf("  %-32s -> %s\n", world.schema().describe(key).c_str(),
                hint.c_str());
  }

  // ---- 3. Proactive or reactive? -------------------------------------------
  std::printf("\nproactive (learn on days 1-2, apply on days 3-4) vs "
              "reactive (fix after 1 h):\n");
  std::printf("%-12s %22s %22s\n", "metric", "proactive (of potential)",
              "reactive (of potential)");
  for (const Metric m : kAllMetrics) {
    const auto proactive =
        whatif.proactive(m, 0.05, 0, kEpochs / 2, kEpochs / 2, kEpochs);
    const auto reactive = whatif.reactive(m, 1);
    std::printf("%-12s %12.1f%% (%4.0f%%) %13.1f%% (%4.0f%%)\n",
                std::string(metric_name(m)).c_str(),
                100 * proactive.alleviated_fraction,
                proactive.potential_fraction > 0
                    ? 100 * proactive.alleviated_fraction /
                          proactive.potential_fraction
                    : 0.0,
                100 * reactive.alleviated_fraction,
                reactive.potential_fraction > 0
                    ? 100 * reactive.alleviated_fraction /
                          reactive.potential_fraction
                    : 0.0);
  }
  std::printf("\nreading: if the reactive column captures most of its "
              "potential, persistent incidents dominate and a 1-hour "
              "detection loop suffices; large gaps argue for proactive "
              "fixes of recurrent offenders.\n");
  return 0;
}
