// Remedy A/B test: detect the worst offender, apply a concrete remedy,
// re-simulate with identical random streams, and diff the two runs with the
// A/B comparator — the full improvement loop the paper's §5 modelled but
// could not execute.
//
// Build & run: cmake --build build && ./build/examples/remedy_ab_test

#include <cstdio>

#include "src/core/compare.h"
#include "src/core/overlap.h"
#include "src/gen/diagnose.h"
#include "src/gen/tracegen.h"

int main() {
  using namespace vq;

  WorldConfig world_config;
  world_config.num_asns = 1200;
  const World world = World::build(world_config);

  constexpr std::uint32_t kEpochs = 48;
  EventScheduleConfig event_config;
  event_config.num_epochs = kEpochs;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = kEpochs;
  trace_config.sessions_per_epoch = 5000;

  PipelineConfig config;
  config.cluster_params.min_sessions = 100;

  // ---- A: baseline ----------------------------------------------------------
  const SessionTable baseline = generate_trace(world, events, trace_config);
  const PipelineResult before = run_pipeline(baseline, config);

  // ---- pick the worst join-failure offender and derive its remedy ----------
  const auto top = top_critical_keys(before, Metric::kJoinFailure, 1);
  if (top.empty()) {
    std::printf("nothing to fix\n");
    return 0;
  }
  const ClusterKey offender = ClusterKey::from_raw(top[0]);
  const Diagnosis diag = diagnose_cluster(offender, world);
  Remedy remedy;
  remedy.scope = offender;
  remedy.action = diag.category == CauseCategory::kSingleBitrateSite
                      ? RemedyAction::kAddBitrateLadder
                  : diag.category == CauseCategory::kRemoteModulesSite
                      ? RemedyAction::kLocalizePlayerModules
                  // Any CDN-rooted cause (chronic or event-driven): moving
                  // the traffic to the best commercial CDN fixes it whatever
                  // the mechanism was.
                  : offender.has(AttrDim::kCdn)
                      ? RemedyAction::kSwitchToBestCdn
                      : RemedyAction::kSuppressEvents;
  std::printf("worst JoinFailure offender: %s\n  diagnosis: %s\n  remedy:   "
              "%s\n\n",
              world.schema().describe(offender).c_str(), diag.summary.c_str(),
              diag.recommendation.c_str());

  // ---- B: remedied re-simulation --------------------------------------------
  const SessionTable remedied =
      generate_trace(world, events, trace_config, {&remedy, 1});
  const PipelineResult after = run_pipeline(remedied, config);

  // ---- diff -------------------------------------------------------------------
  const TraceComparison comparison = compare_results(before, after);
  std::printf("per-metric problem ratios, A (baseline) vs B (remedied):\n");
  for (const Metric m : kAllMetrics) {
    const MetricComparison& mc = comparison.at(m);
    std::printf("  %-12s %.4f -> %.4f  (%+.1f%%)\n",
                std::string(metric_name(m)).c_str(),
                mc.problem_ratio_before, mc.problem_ratio_after,
                100.0 * mc.relative_change());
  }

  std::printf("\ncluster fates (JoinFailure, largest mass changes):\n");
  const auto& deltas = comparison.at(Metric::kJoinFailure).clusters;
  for (std::size_t i = 0; i < std::min<std::size_t>(8, deltas.size()); ++i) {
    const ClusterDelta& d = deltas[i];
    std::printf("  %-10s %-40s %8.0f -> %7.0f\n",
                std::string(cluster_fate_name(d.fate)).c_str(),
                world.schema().describe(d.key).c_str(), d.mass_before,
                d.mass_after);
  }
  return 0;
}
