// CDN outage post-mortem: script a concrete incident — a 6-hour capacity
// collapse at one CDN, overlapping a 3-hour failure spike at one popular
// site — and walk through how the analysis isolates each cause.
//
// Demonstrates: EventSchedule::from_events scenario scripting, per-epoch
// critical clusters, attribution mass, and streak detection.
//
// Build & run: cmake --build build && ./build/examples/cdn_outage_postmortem

#include <cstdio>

#include "src/core/pipeline.h"
#include "src/core/prevalence.h"
#include "src/stats/timeseries.h"
#include "src/gen/tracegen.h"

int main() {
  using namespace vq;

  WorldConfig world_config;
  world_config.num_asns = 1200;
  const World world = World::build(world_config);

  constexpr std::uint32_t kEpochs = 24;

  // ---- script the incident -------------------------------------------------
  // Incident A: CDN 2 loses most of its capacity from 08:00 for 6 hours.
  ProblemEvent cdn_outage;
  {
    AttrVec attrs;
    attrs[AttrDim::kCdn] = 2;
    cdn_outage.scope = ClusterKey::pack(dim_bit(AttrDim::kCdn), attrs);
    cdn_outage.kind = EventKind::kThroughputCollapse;
    cdn_outage.impact.bw_multiplier = 0.2;
    cdn_outage.start_epoch = 8;
    cdn_outage.duration_epochs = 6;
  }
  // Incident B: the most popular site ships a broken manifest for 3 hours.
  ProblemEvent site_failures;
  {
    AttrVec attrs;
    attrs[AttrDim::kSite] = 0;
    site_failures.scope = ClusterKey::pack(dim_bit(AttrDim::kSite), attrs);
    site_failures.kind = EventKind::kFailureSpike;
    site_failures.impact.fail_prob_add = 0.4;
    site_failures.start_epoch = 10;
    site_failures.duration_epochs = 3;
  }
  const EventSchedule schedule =
      EventSchedule::from_events({cdn_outage, site_failures}, kEpochs);

  TraceConfig trace_config;
  trace_config.num_epochs = kEpochs;
  trace_config.sessions_per_epoch = 6000;
  const SessionTable trace = generate_trace(world, schedule, trace_config);

  PipelineConfig config;
  config.cluster_params.min_sessions = 100;
  const PipelineResult result = run_pipeline(trace, config);

  // ---- post-mortem ----------------------------------------------------------
  std::printf("hourly top critical cluster (BufRatio | JoinFailure):\n");
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    const auto describe_top = [&](Metric m) -> std::string {
      const auto& criticals = result.at(m, e).analysis.criticals;
      if (criticals.empty()) return "-";
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s (%.0f sessions)",
                    world.schema().describe(criticals[0].key).c_str(),
                    criticals[0].attributed);
      return buf;
    };
    std::printf("  %02u:00  %-42s %-42s\n", e,
                describe_top(Metric::kBufRatio).c_str(),
                describe_top(Metric::kJoinFailure).c_str());
  }

  // Streak view: how long did each detected cause persist?
  std::printf("\ndetected incident streaks (buffering):\n");
  const auto buf_report = build_prevalence(
      critical_cluster_keys(result, Metric::kBufRatio), result.num_epochs);
  for (const auto& timeline : buf_report.timelines) {
    if (timeline.max_persistence < 3 || timeline.key.arity() > 2) continue;
    for (const Streak& streak : streaks_from_epochs(timeline.epochs)) {
      if (streak.length < 3) continue;
      std::printf("  %-28s epochs %02u:00-%02u:00 (%u h)\n",
                  world.schema().describe(timeline.key).c_str(),
                  streak.start, streak.start + streak.length, streak.length);
    }
  }
  std::printf("\ndetected incident streaks (join failures):\n");
  const auto fail_report = build_prevalence(
      critical_cluster_keys(result, Metric::kJoinFailure), result.num_epochs);
  for (const auto& timeline : fail_report.timelines) {
    if (timeline.max_persistence < 3 || timeline.key.arity() > 2) continue;
    for (const Streak& streak : streaks_from_epochs(timeline.epochs)) {
      if (streak.length < 3) continue;
      std::printf("  %-28s epochs %02u:00-%02u:00 (%u h)\n",
                  world.schema().describe(timeline.key).c_str(),
                  streak.start, streak.start + streak.length, streak.length);
    }
  }

  std::printf("\nground truth: Cdn=cdn-02 throughput collapse 08:00-14:00; "
              "Site=site-0000 failure spike 10:00-13:00\n");
  return 0;
}
