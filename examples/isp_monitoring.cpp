// Streaming quality-operations monitor: process epochs one at a time (as a
// live system would) through the library's StreamingDetector, print incident
// lifecycle alerts, and diagnose escalations against the world's ground
// truth.
//
// Demonstrates: incremental per-epoch use of the engine via
// core/monitor.h — exactly the loop a reactive alleviation system (paper
// §5.3) would run — plus gen/diagnose.h for root-cause hypotheses.
//
// Build & run: cmake --build build && ./build/examples/isp_monitoring

#include <cstdio>

#include "src/core/monitor.h"
#include "src/gen/diagnose.h"
#include "src/gen/tracegen.h"

int main() {
  using namespace vq;

  WorldConfig world_config;
  world_config.num_asns = 1500;
  const World world = World::build(world_config);

  constexpr std::uint32_t kEpochs = 48;
  EventScheduleConfig event_config;
  event_config.num_epochs = kEpochs;
  event_config.events_per_epoch = 0.8;
  const EventSchedule events = EventSchedule::generate(world, event_config);

  TraceConfig trace_config;
  trace_config.num_epochs = kEpochs;
  trace_config.sessions_per_epoch = 4000;

  MonitorConfig monitor_config;
  monitor_config.cluster_params.min_sessions = 100;
  monitor_config.escalate_after = 1;  // the paper's reactive delay
  StreamingDetector detector{monitor_config};

  std::printf("monitoring %u hourly epochs (escalations only)...\n\n",
              kEpochs);
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    // In production this span would come from the measurement firehose.
    const std::vector<Session> sessions =
        generate_epoch(world, events, trace_config, epoch);
    for (const IncidentEvent& event : detector.ingest(sessions, epoch)) {
      switch (event.update) {
        case IncidentUpdate::kEscalated: {
          const Diagnosis diag = diagnose_cluster(event.incident.key, world,
                                                  &events, epoch);
          std::printf("%02u:00 [ESCALATE] %-11s %-34s %.0f sessions/h\n"
                      "      cause: %s\n      action: %s\n",
                      epoch,
                      std::string(metric_name(event.incident.metric)).c_str(),
                      world.schema().describe(event.incident.key).c_str(),
                      event.incident.attributed, diag.summary.c_str(),
                      diag.recommendation.c_str());
          break;
        }
        case IncidentUpdate::kCleared:
          if (event.incident.escalated) {
            std::printf("%02u:00 [CLEARED]  %-11s %-34s after %u h\n", epoch,
                        std::string(metric_name(event.incident.metric))
                            .c_str(),
                        world.schema().describe(event.incident.key).c_str(),
                        event.incident.streak);
          }
          break;
        case IncidentUpdate::kNew:
          break;  // noisy; wait for the escalation
      }
    }
  }

  std::printf("\nend of watch. incidents opened per metric:");
  for (const Metric m : kAllMetrics) {
    std::printf(" %s=%ju", std::string(metric_name(m)).c_str(),
                static_cast<std::uintmax_t>(detector.total_opened(m)));
  }
  std::printf("\nstill open and escalated:\n");
  for (const Metric m : kAllMetrics) {
    for (const Incident& incident : detector.active(m)) {
      if (!incident.escalated) continue;
      std::printf("  %-11s %-34s open %u h\n",
                  std::string(metric_name(m)).c_str(),
                  world.schema().describe(incident.key).c_str(),
                  incident.streak);
    }
  }
  return 0;
}
