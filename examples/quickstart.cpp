// Quickstart: generate a synthetic two-day trace, run the full analysis
// pipeline, and print the headline structure — problem ratios per metric,
// problem/critical cluster counts, coverage, and the top critical clusters
// with human-readable attribute names.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/overlap.h"
#include "src/core/pipeline.h"
#include "src/core/whatif.h"
#include "src/gen/events.h"
#include "src/gen/tracegen.h"
#include "src/gen/world.h"

int main() {
  using namespace vq;

  // 1. Build a world: 379 sites, 19 CDNs, 1500 ASNs (scaled-down paper mix).
  WorldConfig world_config;
  world_config.num_asns = 1500;
  const World world = World::build(world_config);

  // 2. Plant a schedule of problem events over 48 hourly epochs.
  EventScheduleConfig event_config;
  event_config.num_epochs = 48;
  const EventSchedule events = EventSchedule::generate(world, event_config);

  // 3. Generate the session trace.
  TraceConfig trace_config;
  trace_config.num_epochs = 48;
  trace_config.sessions_per_epoch = 3000;
  const SessionTable trace = generate_trace(world, events, trace_config);
  std::printf("generated %zu sessions over %u epochs\n\n", trace.size(),
              trace.num_epochs());

  // 4. Run the analysis pipeline (thresholds and 1.5x rule from the paper;
  //    the significance floor is scaled to the synthetic trace size).
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result = run_pipeline(trace, config);

  // 5. Headline structure per metric.
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "metric", "probratio",
              "probclus", "critclus", "pc-cover", "cc-cover");
  for (const Metric m : kAllMetrics) {
    double prob_ratio = 0.0;
    const auto& summaries = result.per_metric[static_cast<int>(m)];
    for (const auto& s : summaries) {
      prob_ratio += s.analysis.sessions == 0
                        ? 0.0
                        : static_cast<double>(s.analysis.problem_sessions) /
                              static_cast<double>(s.analysis.sessions);
    }
    prob_ratio /= static_cast<double>(summaries.size());
    const auto agg = result.aggregates(m);
    std::printf("%-12s %10.4f %10.1f %10.1f %10.3f %10.3f\n",
                std::string(metric_name(m)).c_str(), prob_ratio,
                agg.mean_problem_clusters, agg.mean_critical_clusters,
                agg.mean_problem_coverage, agg.mean_critical_coverage);
  }

  // 6. The top recurrent critical clusters for join failures, with names.
  std::printf("\ntop critical clusters (JoinFailure, by covered sessions):\n");
  const auto top = top_critical_keys(result, Metric::kJoinFailure, 5);
  for (const std::uint64_t raw : top) {
    std::printf("  %s\n",
                world.schema().describe(ClusterKey::from_raw(raw)).c_str());
  }

  // 7. What could fixing the top 1% achieve?
  const WhatIfAnalyzer whatif{result};
  const double fractions[] = {0.01};
  for (const Metric m : kAllMetrics) {
    const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, fractions);
    std::printf("fixing top 1%% of %-12s critical clusters alleviates "
                "%.0f%% of problem sessions\n",
                std::string(metric_name(m)).c_str(),
                100.0 * sweep[0].alleviated_fraction);
  }
  return 0;
}
